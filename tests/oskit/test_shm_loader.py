"""Shared-memory namespace and the loader callback table."""

import pytest

from repro.errors import (InvalidMappingError, ShmError,
                          ShmExhaustedError, ShmNameError,
                          ShmSizeMismatchError)
from repro.faults import FaultInjector
from repro.oskit.loader import CallbackTable
from repro.oskit.shm import SharedMemoryNamespace
from repro.sim.physmem import PhysicalMemory


class TestShm:
    def test_shm_open_creates_file_backed_region(self, physmem):
        ns = SharedMemoryNamespace(physmem)
        region = ns.shm_open("tmi-app", 1 << 20)
        assert region.file_backed
        assert region.nbytes == 1 << 20

    def test_reopen_returns_same_region(self, physmem):
        ns = SharedMemoryNamespace(physmem)
        a = ns.shm_open("x", 4096)
        b = ns.shm_open("x", 4096)
        assert a is b

    def test_reopen_with_different_size_rejected(self, physmem):
        ns = SharedMemoryNamespace(physmem)
        ns.shm_open("x", 4096)
        with pytest.raises(InvalidMappingError):
            ns.shm_open("x", 8192)

    def test_unlink_allows_fresh_region(self, physmem):
        ns = SharedMemoryNamespace(physmem)
        a = ns.shm_open("x", 4096)
        ns.shm_unlink("x")
        b = ns.shm_open("x", 4096)
        assert a is not b

    def test_names_listing(self, physmem):
        ns = SharedMemoryNamespace(physmem)
        ns.shm_open("b", 4096)
        ns.shm_open("a", 4096)
        assert ns.names() == ["a", "b"]


class TestShmErrorPaths:
    def test_size_mismatch_error_carries_context(self, physmem):
        ns = SharedMemoryNamespace(physmem)
        ns.shm_open("x", 4096)
        with pytest.raises(ShmSizeMismatchError) as excinfo:
            ns.shm_open("x", 8192)
        message = str(excinfo.value)
        assert "x" in message and "4096" in message and "8192" in message
        # back-compat: still an InvalidMappingError for old callers
        assert isinstance(excinfo.value, InvalidMappingError)

    def test_unlink_unknown_name_raises(self, physmem):
        ns = SharedMemoryNamespace(physmem)
        ns.shm_open("known", 4096)
        with pytest.raises(ShmNameError) as excinfo:
            ns.shm_unlink("ghost")
        assert "ghost" in str(excinfo.value)
        assert "known" in str(excinfo.value)   # names the live regions
        assert isinstance(excinfo.value, ShmError)

    def test_capacity_exhaustion_raises(self, physmem):
        ns = SharedMemoryNamespace(physmem, capacity=2)
        ns.shm_open("a", 4096)
        ns.shm_open("b", 4096)
        with pytest.raises(ShmExhaustedError, match="capacity"):
            ns.shm_open("c", 4096)
        # reopening an existing region still works at capacity
        assert ns.shm_open("a", 4096) is not None

    def test_injected_exhaustion_fires(self, physmem):
        faults = FaultInjector(seed=0, rates={"shm.exhausted": 1.0})
        ns = SharedMemoryNamespace(physmem, faults=faults)
        with pytest.raises(ShmExhaustedError, match="injected"):
            ns.shm_open("a", 4096)
        assert faults.fired_counts() == {"shm.exhausted": 1}


class TestCallbackTable:
    def test_default_callbacks_are_nops(self):
        table = CallbackTable()
        assert table.fire("atomic_begin") == 0
        assert table.installed_by is None

    def test_install_replaces_implementation(self):
        table = CallbackTable()
        calls = []
        table.install("tmi", atomic_begin=lambda *a: calls.append(a) or 7)
        assert table.fire("atomic_begin", "thread") == 7
        assert calls == [("thread",)]
        assert table.installed_by == "tmi"
        # uninstalled callbacks stay NOPs
        assert table.fire("asm_end") == 0

    def test_unknown_callback_rejected(self):
        with pytest.raises(KeyError):
            CallbackTable().install("x", jit_enter=lambda: 1)

    def test_reset_restores_nops(self):
        table = CallbackTable()
        table.install("tmi", asm_begin=lambda *a: 5)
        table.reset()
        assert table.fire("asm_begin") == 0
        assert table.installed_by is None
