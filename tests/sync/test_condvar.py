"""Condition variables: wait/signal/broadcast semantics."""

import pytest

from repro.errors import SimulationError

from helpers import run_program


class TestCondvar:
    def test_signal_wakes_one_waiter(self):
        events = []

        def main(t):
            m = yield from t.mutex()
            cv = yield from t.condvar()
            buf = yield from t.malloc(64)

            def consumer(w):
                yield from w.lock(m)
                while True:
                    value = yield from w.load(buf, 8)
                    if value:
                        break
                    yield from w.cond_wait(cv, m)
                events.append(("consumed", value))
                yield from w.store(buf, 0, 8)
                yield from w.unlock(m)

            def producer(w):
                yield from w.compute(30_000)
                yield from w.lock(m)
                yield from w.store(buf, 42, 8)
                events.append(("produced", 42))
                yield from w.cond_signal(cv)
                yield from w.unlock(m)

            c = yield from t.spawn(consumer)
            p = yield from t.spawn(producer)
            yield from t.join(c)
            yield from t.join(p)

        run_program(main, nthreads=2)
        assert events == [("produced", 42), ("consumed", 42)]

    def test_broadcast_wakes_all(self):
        woken = []

        def main(t):
            m = yield from t.mutex()
            cv = yield from t.condvar()
            flag = yield from t.malloc(64)

            def waiter(w):
                yield from w.lock(m)
                while True:
                    value = yield from w.load(flag, 8)
                    if value:
                        break
                    yield from w.cond_wait(cv, m)
                woken.append(w.tid)
                yield from w.unlock(m)

            def broadcaster(w):
                yield from w.compute(60_000)
                yield from w.lock(m)
                yield from w.store(flag, 1, 8)
                yield from w.cond_broadcast(cv)
                yield from w.unlock(m)

            tids = []
            for _ in range(3):
                tid = yield from t.spawn(waiter)
                tids.append(tid)
            b = yield from t.spawn(broadcaster)
            for tid in tids + [b]:
                yield from t.join(tid)

        run_program(main, nthreads=4)
        assert len(woken) == 3

    def test_waiter_reacquires_mutex(self):
        """The woken waiter holds the mutex when cond_wait returns."""
        def main(t):
            m = yield from t.mutex()
            cv = yield from t.condvar()
            buf = yield from t.malloc(64)

            def waiter(w):
                yield from w.lock(m)
                yield from w.cond_wait(cv, m)
                assert m.owner_tid == w.tid
                value = yield from w.load(buf, 8)
                yield from w.store(buf, value + 1, 8)
                yield from w.unlock(m)

            def signaller(w):
                yield from w.compute(30_000)
                yield from w.lock(m)
                value = yield from w.load(buf, 8)
                yield from w.store(buf, value + 1, 8)
                yield from w.cond_signal(cv)
                yield from w.unlock(m)

            a = yield from t.spawn(waiter)
            b = yield from t.spawn(signaller)
            yield from t.join(a)
            yield from t.join(b)
            total = yield from t.load(buf, 8)
            assert total == 2

        run_program(main, nthreads=2)

    def test_wait_without_mutex_raises(self):
        def main(t):
            m = yield from t.mutex()
            cv = yield from t.condvar()
            yield from t.cond_wait(cv, m)

        with pytest.raises(SimulationError):
            run_program(main, nthreads=1)

    def test_signal_with_no_waiters_is_noop(self):
        def main(t):
            cv = yield from t.condvar()
            yield from t.cond_signal(cv)
            yield from t.cond_broadcast(cv)

        result, _ = run_program(main, nthreads=1)
        assert result.cycles > 0
