"""Sync object state: shadow redirection, sizes, hot addresses."""

from repro.sync.objects import Barrier, Condvar, Mutex


class TestMutex:
    def test_hot_addr_defaults_to_app_memory(self):
        mutex = Mutex(mid=1, addr=0x1000)
        assert mutex.hot_addr == 0x1000

    def test_shadow_redirects_hot_addr(self):
        """TMI's pshared redirection: traffic moves to the shadow."""
        mutex = Mutex(mid=1, addr=0x1000)
        mutex.shadow_addr = 0x2000_0040
        assert mutex.hot_addr == 0x2000_0040
        assert mutex.addr == 0x1000          # app object untouched

    def test_pthread_mutex_size(self):
        assert Mutex.SIZE == 40              # x86-64 glibc

    def test_identity_equality(self):
        a = Mutex(mid=1, addr=0x1000)
        b = Mutex(mid=1, addr=0x1000)
        assert a != b                        # eq=False: object identity


class TestBarrier:
    def test_fresh_barrier_state(self):
        barrier = Barrier(bid=1, addr=0x1000, parties=4)
        assert barrier.arrived == []
        assert barrier.generation == 0

    def test_shadow_redirect(self):
        barrier = Barrier(bid=1, addr=0x1000, parties=2)
        barrier.shadow_addr = 0x2000_0000
        assert barrier.hot_addr == 0x2000_0000


class TestCondvar:
    def test_fresh_condvar_state(self):
        condvar = Condvar(cid=1, addr=0x1000)
        assert condvar.waiters == []
        assert condvar.hot_addr == 0x1000
