"""ScheduleTrace artifacts: round-trip, versioning, signatures."""

import json

import pytest

from repro.schedule import TRACE_FORMAT, ScheduleTrace
from repro.schedule.trace import race_signatures


def sample_trace():
    return ScheduleTrace(
        workload="racy-flag", system="pthreads", policy="random",
        seed=9, scale=1.0, nthreads=2, variant=None, max_cycles=123_456,
        decisions=[0, 1, 1, 0, 2],
        failure={"kind": "race", "detail": "1 data race(s)",
                 "signatures": [["data-race", "payload", 512]]})


class TestRoundTrip:
    def test_dict_round_trip(self):
        trace = sample_trace()
        again = ScheduleTrace.from_dict(trace.to_dict())
        assert again == trace

    def test_format_tag_present(self):
        assert sample_trace().to_dict()["format"] == TRACE_FORMAT

    def test_wrong_format_rejected(self):
        data = sample_trace().to_dict()
        data["format"] = "repro-schedule-trace/999"
        with pytest.raises(ValueError, match="unsupported"):
            ScheduleTrace.from_dict(data)

    def test_missing_format_rejected(self):
        data = sample_trace().to_dict()
        del data["format"]
        with pytest.raises(ValueError, match="unsupported"):
            ScheduleTrace.from_dict(data)


class TestSaveLoad:
    def test_save_load(self, tmp_path):
        trace = sample_trace()
        path = trace.save(out_dir=str(tmp_path))
        assert path.endswith("racy-flag-pthreads-random-s9.json")
        assert ScheduleTrace.load(path) == trace
        # the artifact is plain versioned JSON
        data = json.loads((tmp_path / trace.default_name()).read_text())
        assert data["format"] == TRACE_FORMAT
        assert data["decisions"] == [0, 1, 1, 0, 2]

    def test_explicit_path(self, tmp_path):
        target = tmp_path / "repro.json"
        assert sample_trace().save(path=str(target)) == str(target)
        assert target.exists()


class TestPolicySpec:
    def test_replay_spec(self):
        spec = sample_trace().policy_spec()
        assert spec == {"policy": "replay",
                        "decisions": [0, 1, 1, 0, 2]}


class TestRaceSignatures:
    def test_none_report(self):
        assert race_signatures(None) == []

    def test_sorted_triples(self):
        class F:
            def __init__(self, rule, label, line_va):
                self.rule = rule
                self.label = label
                self.line_va = line_va

        class R:
            findings = [F("data-race", "b", 128), F("data-race", "a", 64)]

        assert race_signatures(R()) == [["data-race", "a", 64],
                                        ["data-race", "b", 128]]
