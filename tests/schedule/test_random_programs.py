"""Property tests: fuzzed schedules never change the final memory of
race-free programs (pthreads semantics are schedule-independent for
lock-disciplined, confluent update patterns)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import random_program
from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine
from repro.schedule import make_policy

PERTURBATIONS = ["random", "pct", "delay"]


def run_random(program_seed, policy_spec=None, **program_kwargs):
    env = {}
    program = random_program(program_seed, env=env, **program_kwargs)
    kwargs = {}
    if policy_spec is not None:
        kwargs["policy"] = make_policy(policy_spec)
    result = Engine(program, PthreadsRuntime(), **kwargs).run()
    assert result.validated, result.error
    return env


class TestGeneratorIsConfluent:
    def test_expected_matches_default_run(self):
        env = run_random(0)
        assert env["finals"] == env["expected"]

    def test_distinct_seeds_give_distinct_programs(self):
        a = run_random(1)
        b = run_random(2)
        assert a["expected"] != b["expected"]


class TestFuzzedSchedulesPreserveState:
    @pytest.mark.parametrize("policy", PERTURBATIONS)
    @pytest.mark.parametrize("program_seed", [0, 3, 11])
    def test_parametrized(self, program_seed, policy):
        baseline = run_random(program_seed)
        for schedule_seed in range(4):
            env = run_random(program_seed,
                             {"policy": policy, "seed": schedule_seed})
            assert env["finals"] == baseline["finals"], (
                f"{policy} seed {schedule_seed} changed final memory")

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program_seed=st.integers(0, 2**16),
           schedule_seed=st.integers(0, 2**16),
           policy=st.sampled_from(PERTURBATIONS),
           nthreads=st.integers(2, 4),
           nlocks=st.integers(1, 3))
    def test_property(self, program_seed, schedule_seed, policy,
                      nthreads, nlocks):
        kwargs = dict(nthreads=nthreads, nlocks=nlocks,
                      ops_per_thread=25)
        baseline = run_random(program_seed, **kwargs)
        fuzzed = run_random(
            program_seed, {"policy": policy, "seed": schedule_seed},
            **kwargs)
        assert fuzzed["finals"] == baseline["finals"]
        assert fuzzed["finals"] == baseline["expected"]
