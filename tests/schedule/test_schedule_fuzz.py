"""Fuzz driver end-to-end: finding, shrinking, artifacts, replay.

Serial (``jobs=1``) so the tests stay fast and debuggable; the
process-pool fan-out path is covered by the eval harness tests.
"""

from repro.eval.runner import BUDGET, OK, RunOutcome, run_workload
from repro.schedule import ScheduleTrace, fuzz_workload, replay_trace
from repro.schedule.fuzz import RACE, STATE_MISMATCH, classify_outcome


class TestClassifyOutcome:
    def _outcome(self, status=OK, analysis=None, final_state=None,
                 detail=""):
        return RunOutcome("w", "s", status, detail=detail,
                          analysis=analysis, final_state=final_state)

    def test_clean(self):
        kind, _, sigs = classify_outcome(self._outcome())
        assert kind is None and sigs == []

    def test_status_passthrough(self):
        kind, detail, _ = classify_outcome(
            self._outcome(status=BUDGET, detail="boom"))
        assert kind == BUDGET and detail == "boom"

    def test_race(self):
        class F:
            rule, label, line_va = "data-race", "x", 64

        class R:
            findings = [F()]

        kind, _, sigs = classify_outcome(self._outcome(analysis=R()))
        assert kind == RACE
        assert sigs == [["data-race", "x", 64]]

    def test_state_mismatch(self):
        kind, detail, _ = classify_outcome(
            self._outcome(final_state={"total": 2}), {"total": 1})
        assert kind == STATE_MISMATCH
        assert "total" in detail

    def test_matching_state_is_clean(self):
        kind, _, _ = classify_outcome(
            self._outcome(final_state={"total": 1}), {"total": 1})
        assert kind is None


class TestFuzzFindsRace:
    def test_racy_flag(self, tmp_path):
        report = fuzz_workload("racy-flag", seeds=2, scale=1.0, jobs=1,
                               out_dir=str(tmp_path), max_shrinks=1)
        assert not report.ok
        races = [f for f in report.findings if f.kind == RACE]
        assert races, [f.kind for f in report.findings]
        finding = races[0]
        assert finding.signatures
        assert finding.artifact is not None
        trace = ScheduleTrace.load(finding.artifact)
        assert trace.failure["kind"] == RACE
        assert trace.failure["signatures"] == [
            list(s) for s in finding.signatures]

    def test_replay_reproduces_identical_finding(self, tmp_path):
        report = fuzz_workload("racy-flag", seeds=1, scale=1.0, jobs=1,
                               out_dir=str(tmp_path))
        result = replay_trace(report.findings[0].artifact)
        assert result.matches, result.detail()
        assert result.kind == RACE

    def test_clean_workload_has_no_findings(self, tmp_path):
        report = fuzz_workload("histogram", seeds=2, scale=0.03, jobs=1,
                               out_dir=str(tmp_path))
        assert report.ok, [
            (f.kind, f.detail) for f in report.findings]
        assert report.baseline_status == OK
        assert report.baseline_signatures == []


class TestLivelockBudget:
    """A schedule that exhausts the cycle budget must come back as a
    replayable artifact, never as a harness hang."""

    def test_budget_outcome_carries_trace(self):
        outcome = run_workload("racy-flag", "pthreads", max_cycles=4_000,
                               schedule={"policy": "random", "seed": 0})
        assert outcome.status == BUDGET
        assert outcome.trace is not None
        assert outcome.trace["policy"] == "random"

    def test_budget_finding_is_replayable(self, tmp_path):
        report = fuzz_workload("racy-flag", seeds=1, scale=1.0, jobs=1,
                               max_cycles=4_000, sanitize=False,
                               out_dir=str(tmp_path), shrink=False)
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.kind == BUDGET
        result = replay_trace(finding.artifact)
        assert result.kind == BUDGET
        assert result.matches, result.detail()


class TestBudgetBound:
    def test_expired_budget_stops_launching(self, tmp_path):
        report = fuzz_workload("racy-flag", seeds=64, scale=1.0, jobs=1,
                               budget=0.0, out_dir=str(tmp_path))
        assert report.budget_exhausted
        assert report.seeds == []


class TestSmokeFuzz:
    def test_smoke_passes_and_reports(self, tmp_path, monkeypatch):
        from repro.schedule import smoke_fuzz
        monkeypatch.setenv("REPRO_JOBS", "1")
        result = smoke_fuzz(seeds=2, budget=45.0, jobs=1,
                            out_dir=str(tmp_path))
        assert result.ok, result.summary_lines()
        names = [name for name, _, _ in result.checks]
        assert len(names) == 3
        lines = result.summary_lines()
        assert all(line.startswith("[PASS]") for line in lines)
        # both controls ran and reported
        assert "racy-flag" in result.reports
        assert "histogram" in result.reports
        assert result.reports["histogram"].ok
        for line in result.reports["racy-flag"].summary_lines():
            assert isinstance(line, str)


class TestSmokeSummaryArtifacts:
    """A failing smoke run must print every finding's replay artifact;
    a passing one stays terse (the positive control finds races by
    design)."""

    def _result(self, passed):
        from repro.schedule.fuzz import (FuzzFinding, FuzzReport,
                                         SmokeResult)
        finding = FuzzFinding(
            workload="histogram", system="pthreads", policy="random",
            seed=3, kind=STATE_MISMATCH,
            artifact="results/fuzz/histogram-pthreads-random-3.json")
        report = FuzzReport(
            workload="histogram", system="pthreads", policy="random",
            scale=0.05, seeds=[3], max_cycles=None, findings=[finding],
            baseline_status=OK, baseline_signatures=[], elapsed=0.1)
        return SmokeResult(
            checks=[("histogram: race-free workload fuzzes clean",
                     passed, "1 finding(s) over 1 seed(s)")],
            reports={"histogram": report})

    def test_failing_smoke_lists_artifacts(self):
        lines = self._result(passed=False).summary_lines()
        text = "\n".join(lines)
        assert "[FAIL]" in text
        assert "results/fuzz/histogram-pthreads-random-3.json" in text
        assert "replay artifacts:" in text

    def test_passing_smoke_stays_terse(self):
        lines = self._result(passed=True).summary_lines()
        assert all(line.startswith("[PASS]") for line in lines)


class TestShrunkArtifact:
    def test_shrunk_log_still_reproduces(self, tmp_path):
        report = fuzz_workload("racy-flag", seeds=1, scale=1.0, jobs=1,
                               out_dir=str(tmp_path), max_shrinks=1)
        finding = report.findings[0]
        assert finding.shrunk_from is not None
        assert len(finding.decisions) <= finding.shrunk_from
        assert replay_trace(finding.artifact).matches
