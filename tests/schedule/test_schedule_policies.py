"""Schedule policy layer: default identity, determinism, replay."""

import pytest

from helpers import fs_counter_program, random_program
from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine
from repro.errors import CycleBudgetError, SimulationError
from repro.schedule import (POLICY_NAMES, DefaultPolicy, ReplayPolicy,
                            make_policy)


def run_random(seed, policy=None):
    """Run one random_program; returns (env, engine)."""
    env = {}
    program = random_program(seed, env=env)
    kwargs = {}
    if policy is not None:
        kwargs["policy"] = make_policy(policy)
    engine = Engine(program, PthreadsRuntime(), **kwargs)
    engine.run()
    return env, engine


def run_counter(policy=None, **kwargs):
    program = fs_counter_program(iters=300, nworkers=3)
    engine_kwargs = {}
    if policy is not None:
        engine_kwargs["policy"] = make_policy(policy)
    engine_kwargs.update(kwargs)
    engine = Engine(program, PthreadsRuntime(), **engine_kwargs)
    result = engine.run()
    return result, engine


class TestMakePolicy:
    def test_none_is_none(self):
        assert make_policy(None) is None

    def test_instance_passthrough(self):
        policy = DefaultPolicy()
        assert make_policy(policy) is policy

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown schedule policy"):
            make_policy({"policy": "no-such-policy"})

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_every_named_policy_builds(self, name):
        policy = make_policy({"policy": name, "seed": 3})
        assert policy.choose is not None

    def test_replay_spec(self):
        policy = make_policy({"policy": "replay", "decisions": [1, 0, 2]})
        assert isinstance(policy, ReplayPolicy)
        assert policy.decisions == [1, 0, 2]


class TestDefaultPolicyIdentity:
    """DefaultPolicy must reproduce the heap scheduler exactly."""

    def test_result_identical_to_fast_path(self):
        plain, _ = run_counter()
        policied, engine = run_counter(policy={"policy": "default"})
        assert policied.cycles == plain.cycles
        assert policied.hitm_loads == plain.hitm_loads
        assert policied.hitm_stores == plain.hitm_stores
        assert policied.data_ops == plain.data_ops
        assert policied.sync_ops == plain.sync_ops
        assert policied.validated and plain.validated
        # the default policy still records its (all-zero) decisions
        trace = engine.schedule_trace()
        assert trace["policy"] == "default"
        assert set(trace["decisions"]) <= {0}

    def test_plain_run_has_no_trace(self):
        _, engine = run_counter()
        assert engine.schedule_trace() is None


class TestDeterminismAndReplay:
    @pytest.mark.parametrize("name", ["random", "pct", "delay"])
    def test_same_seed_same_schedule(self, name):
        a, ea = run_counter(policy={"policy": name, "seed": 11})
        b, eb = run_counter(policy={"policy": name, "seed": 11})
        assert ea.schedule_decisions == eb.schedule_decisions
        assert a.cycles == b.cycles

    @pytest.mark.parametrize("name", ["random", "pct", "delay"])
    def test_replay_reproduces_cycles(self, name):
        original, engine = run_counter(policy={"policy": name, "seed": 5})
        decisions = list(engine.schedule_decisions)
        replayed, replay_engine = run_counter(
            policy={"policy": "replay", "decisions": decisions})
        assert replayed.cycles == original.cycles
        assert replay_engine.schedule_decisions == decisions

    def test_replay_on_random_program(self):
        env_a, engine = run_random(7, policy={"policy": "random",
                                              "seed": 2})
        env_b, _ = run_random(
            7, policy={"policy": "replay",
                       "decisions": list(engine.schedule_decisions)})
        assert env_a["finals"] == env_b["finals"]


class TestReplayTotality:
    def _fake(self, n):
        class T:
            def __init__(self, i):
                self.ready_time = i
                self.seq = i
        return [T(i) for i in range(n)]

    def test_exhausted_log_defaults_to_zero(self):
        policy = ReplayPolicy([1])
        policy.reset(None)
        assert policy.choose(self._fake(3)) == 1
        assert policy.choose(self._fake(3)) == 0

    def test_out_of_range_clamps(self):
        policy = ReplayPolicy([7])
        policy.reset(None)
        assert policy.choose(self._fake(2)) == 1


class TestPolicyValidation:
    def test_bad_index_raises(self):
        class Bad(DefaultPolicy):
            def choose(self, candidates):
                return len(candidates)

        with pytest.raises(SimulationError, match="chose index"):
            run_counter(policy=Bad())


class TestCycleBudget:
    def test_budget_error_carries_trace(self):
        with pytest.raises(CycleBudgetError) as info:
            run_counter(policy={"policy": "default"}, max_cycles=10_000)
        err = info.value
        assert err.budget == 10_000
        assert err.now > err.budget
        assert err.trace is not None
        assert err.trace["policy"] == "default"
        assert isinstance(err.trace["decisions"], list)

    def test_budget_error_without_policy(self):
        with pytest.raises(CycleBudgetError) as info:
            run_counter(max_cycles=10_000)
        assert info.value.trace is None
