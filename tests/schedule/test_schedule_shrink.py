"""Delta-debugging shrinker over decision logs."""

from repro.schedule import shrink_decisions
from repro.schedule.shrink import _strip_trailing_zeros


class TestStripTrailingZeros:
    def test_strips(self):
        assert _strip_trailing_zeros([1, 0, 2, 0, 0]) == [1, 0, 2]

    def test_all_zero(self):
        assert _strip_trailing_zeros([0, 0, 0]) == []

    def test_empty(self):
        assert _strip_trailing_zeros([]) == []


class TestShrink:
    def test_always_reproducing_shrinks_to_empty(self):
        out = shrink_decisions([1, 2, 3, 4], lambda c: True)
        assert out == []

    def test_never_shrinks_below_needed_decision(self):
        # the failure needs decisions[5] == 3; everything else is noise
        def reproduces(c):
            return len(c) > 5 and c[5] == 3

        start = [1, 2, 1, 2, 1, 3, 2, 1, 2, 1, 2, 1]
        out = shrink_decisions(start, reproduces)
        assert reproduces(out)
        assert out[5] == 3
        # the tail after the needed decision is gone, the prefix zeroed
        assert len(out) == 6
        assert out[:5] == [0, 0, 0, 0, 0]

    def test_keeps_interacting_pair(self):
        def reproduces(c):
            return len(c) >= 4 and c[0] == 2 and c[3] == 1

        out = shrink_decisions([2, 5, 5, 1, 5, 5, 5, 5], reproduces)
        assert reproduces(out)
        assert out == [2, 0, 0, 1]

    def test_respects_max_attempts(self):
        calls = []

        def reproduces(c):
            calls.append(1)
            return True

        shrink_decisions(list(range(1, 200)), reproduces, max_attempts=7)
        assert len(calls) <= 7

    def test_nonreproducing_input_returns_input(self):
        # callers are told to verify first; shrink must still be safe
        start = [1, 2, 3]
        out = shrink_decisions(start, lambda c: False)
        assert out == start
