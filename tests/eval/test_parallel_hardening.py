"""Hardened grid pool: worker death, exceptions, timeouts, REPRO_JOBS.

The flaky-cell worker below misbehaves only in *child* processes
(``os.getpid() != _MAIN_PID``), so the parent's serial retry of the
same cell succeeds — which is exactly the recovery path under test.
Requires the ``fork`` start method (monkeypatched ``_run_cell``
propagates into forked workers); the whole module is skipped elsewhere.
"""

import multiprocessing
import os
import time

import pytest

from repro.eval import parallel
from repro.eval.parallel import (CELL_FAILED, CELL_OK, CELL_TIMEOUT,
                                 job_count, run_cells,
                                 run_cells_recorded)

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="flaky-cell fixture needs fork-inherited monkeypatching")

_MAIN_PID = os.getpid()


def _flaky_cell(cell):
    """Stand-in for ``run_workload``: misbehaves only in children."""
    in_child = os.getpid() != _MAIN_PID
    if cell.get("die") and in_child:
        os._exit(3)                  # simulate a segfaulted worker
    if cell.get("sleep") and in_child:
        time.sleep(cell["sleep"])
    if cell.get("raise"):
        raise ValueError("boom")
    return dict(cell, ran_in=os.getpid())


@pytest.fixture
def flaky_pool(monkeypatch):
    monkeypatch.setattr(parallel, "_run_cell", _flaky_cell)


class TestJobCount:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert job_count(3) == 3

    def test_env_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert job_count() == 5

    def test_malformed_env_warns_and_pins_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_JOBS='many'"):
            assert job_count() == 1

    def test_floor_of_one(self):
        assert job_count(0) == 1
        assert job_count(-4) == 1


class TestBrokenPool:
    def test_dead_worker_cells_retried_serially(self, flaky_pool):
        cells = [{"id": 0}, {"id": 1, "die": True}, {"id": 2}]
        records = run_cells_recorded(cells, jobs=2)
        assert [r.status for r in records] == [CELL_OK] * 3
        died = records[1]
        assert died.retried
        assert died.outcome["ran_in"] == _MAIN_PID   # serial re-run
        # only cells the pool never finished are marked retried
        assert not any(r.retried for r in records
                       if not r.cell.get("die")
                       and r.outcome["ran_in"] != _MAIN_PID)


class TestWorkerException:
    def test_raising_cell_retried_then_recorded_failed(self,
                                                       flaky_pool):
        cells = [{"id": 0}, {"id": 1, "raise": True}]
        records = run_cells_recorded(cells, jobs=2)
        assert records[0].status == CELL_OK
        bad = records[1]
        assert bad.status == CELL_FAILED
        assert bad.retried
        assert "boom" in bad.error

    def test_run_cells_raises_on_persistent_failure(self, flaky_pool):
        with pytest.raises(RuntimeError, match="failed"):
            run_cells([{"id": 0}, {"id": 1, "raise": True}], jobs=2)

    def test_serial_failure_recorded(self, flaky_pool):
        records = run_cells_recorded([{"id": 0, "raise": True}], jobs=1)
        assert records[0].status == CELL_FAILED
        assert "boom" in records[0].error


class TestTimeout:
    def test_slow_cell_recorded_as_timeout(self, flaky_pool):
        cells = [{"id": 0}, {"id": 1, "sleep": 5}]
        records = run_cells_recorded(cells, jobs=2, timeout=0.5)
        assert records[0].status == CELL_OK
        assert records[1].status == CELL_TIMEOUT
        assert not records[1].retried     # would blow the budget again
        assert "wall-clock" in records[1].error
