"""CLI argument handling (no heavy experiments run here)."""

import pytest

from repro.eval.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args(
                [name] if name == "table2" else [name, "--scale", "0.1"])
            assert args.command == name

    def test_run_subcommand(self):
        args = build_parser().parse_args(
            ["run", "histogram", "tmi-protect", "--scale", "0.2"])
        assert args.workload == "histogram"
        assert args.system == "tmi-protect"
        assert args.scale == 0.2

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom", "pthreads"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])


class TestExecution:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "histogramfs" in out and "tmi-protect" in out

    def test_table2_renders(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "TSO" in out
        assert (tmp_path / "table2.txt").exists()

    def test_run_small_workload(self, capsys):
        assert main(["run", "swaptions", "pthreads",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "runtime" in out
