"""CLI argument handling (no heavy experiments run here)."""

import pytest

from repro.eval.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_every_experiment_has_a_subcommand(self):
        parser = build_parser()
        for name in EXPERIMENTS:
            args = parser.parse_args(
                [name] if name == "table2" else [name, "--scale", "0.1"])
            assert args.command == name

    def test_run_subcommand(self):
        args = build_parser().parse_args(
            ["run", "histogram", "tmi-protect", "--scale", "0.2"])
        assert args.workload == "histogram"
        assert args.system == "tmi-protect"
        assert args.scale == 0.2

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom", "pthreads"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_fuzz_defaults_to_smoke_mode(self):
        args = build_parser().parse_args(["fuzz", "--seeds", "16",
                                          "--budget", "60"])
        assert args.workload is None
        assert args.seeds == 16
        assert args.budget == 60.0

    def test_fuzz_targeted(self):
        args = build_parser().parse_args(
            ["fuzz", "racy-flag", "--policy", "pct", "--seeds", "32",
             "--max-cycles", "5000", "--no-sanitize"])
        assert args.workload == "racy-flag"
        assert args.policy == "pct"
        assert args.max_cycles == 5000
        assert args.no_sanitize

    def test_replay_takes_artifact_path(self):
        args = build_parser().parse_args(["replay", "r/fuzz/a.json"])
        assert args.artifact == "r/fuzz/a.json"


class TestExecution:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "histogramfs" in out and "tmi-protect" in out

    def test_table2_renders(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "TSO" in out
        assert (tmp_path / "table2.txt").exists()

    def test_run_small_workload(self, capsys):
        assert main(["run", "swaptions", "pthreads",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "runtime" in out

    def test_fuzz_then_replay_round_trip(self, capsys, tmp_path,
                                         monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "1")
        # a racy workload exits nonzero (findings are failures)...
        assert main(["fuzz", "racy-flag", "--seeds", "1",
                     "--scale", "1.0", "--jobs", "1",
                     "--out-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "findings=1" in out
        artifact = next(tmp_path.glob("*.json"))
        # ...the summary carries the artifact path (the replay handle)
        assert str(artifact) in out
        # ...and replaying its artifact reproduces the finding
        assert main(["replay", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "reproduced" in out

    def test_replay_failure_prints_artifact_path(self, capsys, tmp_path,
                                                 monkeypatch):
        import json

        monkeypatch.setenv("REPRO_JOBS", "1")
        assert main(["fuzz", "racy-flag", "--seeds", "1",
                     "--scale", "1.0", "--jobs", "1",
                     "--out-dir", str(tmp_path)]) == 1
        capsys.readouterr()
        artifact = next(tmp_path.glob("*.json"))
        # corrupt the recorded failure so the replay cannot match it
        data = json.loads(artifact.read_text())
        data["failure"]["kind"] = "deadlock"
        data["failure"]["signatures"] = []
        artifact.write_text(json.dumps(data))
        assert main(["replay", str(artifact)]) == 1
        out = capsys.readouterr().out
        assert "DID NOT reproduce" in out
        # the non-reproducing artifact's path is the actionable handle
        assert str(artifact) in out

    def test_trace_subcommand_writes_chrome_trace(self, capsys,
                                                  tmp_path):
        import json

        out_path = tmp_path / "trace.json"
        assert main(["trace", "swaptions", "pthreads",
                     "--scale", "0.05", "--out", str(out_path)]) == 0
        printed = capsys.readouterr().out
        assert str(out_path) in printed
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]

    def test_metrics_subcommand_prints_snapshot(self, capsys):
        import json

        assert main(["metrics", "swaptions", "pthreads",
                     "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        snapshot = json.loads(out)
        assert snapshot["version"] == "repro-metrics/1"
        assert "machine.cycles" in snapshot["gauges"]

    def test_run_profile_prints_attribution(self, capsys):
        assert main(["run", "swaptions", "pthreads", "--scale", "0.05",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "self-profile" in out
        assert "memory-system" in out


class TestLintGate:
    """`lint --format json` and `--fail-on` are the CI contract."""

    def test_json_output_parses_with_format_tag(self, capsys):
        import json
        assert main(["lint", "histogramfs", "--scale", "0.05",
                     "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["format"] == "repro-lint-report/1"
        assert doc["workload"] == "histogramfs"

    def test_fail_on_info_trips_on_predictions(self, capsys):
        # histogramfs lints ok (no errors) but carries info-level
        # false-sharing predictions -> gate at info must fail
        assert main(["lint", "histogramfs", "--scale", "0.05",
                     "--fail-on", "info"]) == 1
        assert main(["lint", "histogramfs", "--scale", "0.05",
                     "--fail-on", "warning"]) == 0
        capsys.readouterr()

    def test_fail_on_clean_workload_passes(self, capsys):
        assert main(["lint", "swaptions", "--scale", "0.05",
                     "--fail-on", "info"]) == 0
        capsys.readouterr()


class TestRepairCommand:
    def test_repair_plans_one_workload(self, capsys, tmp_path):
        import json
        assert main(["repair", "racy-counters", "--scale", "0.05",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "racy-counters" in out and "split" in out
        saved = list(tmp_path.glob("*.json"))
        assert saved, out
        assert json.loads(saved[0].read_text())["format"] == \
            "repro-repair-plan/1"
