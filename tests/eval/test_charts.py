"""ASCII chart rendering."""

from repro.eval.charts import bar_chart, series_chart


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = bar_chart("t", [("a", 1.0, ""), ("b", 2.0, "")])
        lines = text.splitlines()
        assert lines[0] == "t"
        assert lines[2].count("#") > lines[1].count("#")

    def test_none_values_render_note(self):
        text = bar_chart("t", [("a", 1.0, ""), ("b", None,
                                                "incompatible")])
        assert "incompatible" in text

    def test_empty_chart(self):
        assert "(no data)" in bar_chart("t", [("a", None, "x")])

    def test_baseline_marker(self):
        text = bar_chart("t", [("a", 0.5, "")], baseline=1.0)
        assert "|" in text.splitlines()[1][5:]

    def test_values_printed(self):
        text = bar_chart("t", [("a", 3.14159, "")], unit="x")
        assert "3.14x" in text


class TestSeriesChart:
    def test_levels_cover_range(self):
        text = series_chart("s", [1, 10, 100],
                            {"runtime": [5.0, 4.0, 3.0],
                             "events": [100, 50, 10]})
        assert "runtime" in text and "events" in text
        assert "x = [1, 10, 100]" in text
