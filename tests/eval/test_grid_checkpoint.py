"""Checkpointed grids: resume skips ok cells, re-attempts failures."""

import json
import os
import warnings

import pytest

from repro.errors import CheckpointError, ReproError
from repro.eval import parallel
from repro.eval.grid import (CHECKPOINT_FORMAT, cell_key,
                             checkpoint_path, load_checkpoint,
                             run_checkpointed, run_grid,
                             summarize_outcome)


def _marker_cell(cell):
    """Fake ``run_workload``: fails until the cell's marker exists."""
    need = cell.get("need")
    if need and not os.path.exists(need):
        raise RuntimeError(f"marker {need} missing")
    return dict(cell, ran=True)


@pytest.fixture
def marker_pool(monkeypatch):
    monkeypatch.setattr(parallel, "_run_cell", _marker_cell)


class TestCellKey:
    def test_stable_across_dict_ordering(self):
        assert cell_key({"a": 1, "b": 2}) == cell_key({"b": 2, "a": 1})

    def test_distinct_cells_distinct_keys(self):
        assert cell_key({"a": 1}) != cell_key({"a": 2})


class TestSummarize:
    def test_none_passthrough(self):
        assert summarize_outcome(None) is None

    def test_foreign_outcome_tolerated(self):
        # checkpoint summaries must not explode on fake outcomes
        summary = summarize_outcome({"not": "a RunOutcome"})
        assert summary["status"] is None and summary["cycles"] is None


class TestResume:
    def cells(self, tmp_path):
        marker = str(tmp_path / "marker")
        return marker, [{"id": "good"}, {"id": "bad", "need": marker}]

    def test_failure_then_resume(self, marker_pool, tmp_path):
        marker, cells = self.cells(tmp_path)
        out_dir = str(tmp_path / "ckpt")

        first = run_checkpointed(cells, "demo", jobs=1,
                                 out_dir=out_dir)
        assert [r.status for r in first] == ["ok", "failed"]
        path = checkpoint_path("demo", out_dir=out_dir)
        data = json.load(open(path))
        assert data["format"] == CHECKPOINT_FORMAT
        assert len(data["cells"]) == 2

        # resume: the ok cell is restored, the failed one re-attempted
        # (and now succeeds because its marker exists)
        open(marker, "w").write("ready\n")
        second = run_checkpointed(cells, "demo", jobs=1,
                                  out_dir=out_dir)
        good, bad = second
        assert good.from_checkpoint and good.status == "ok"
        assert good.outcome is None          # summary only, no re-run
        assert not bad.from_checkpoint and bad.status == "ok"
        assert bad.outcome["ran"] is True

        # third run: everything restores, nothing executes
        third = run_checkpointed(cells, "demo", jobs=1,
                                 out_dir=out_dir)
        assert all(r.from_checkpoint for r in third)

    def test_fresh_discards_checkpoint(self, marker_pool, tmp_path):
        marker, cells = self.cells(tmp_path)
        out_dir = str(tmp_path / "ckpt")
        open(marker, "w").write("ready\n")
        run_checkpointed(cells, "demo", jobs=1, out_dir=out_dir)
        records = run_checkpointed(cells, "demo", jobs=1,
                                   out_dir=out_dir, fresh=True)
        assert not any(r.from_checkpoint for r in records)

    def test_bad_format_rejected(self, marker_pool, tmp_path):
        out_dir = str(tmp_path / "ckpt")
        path = checkpoint_path("demo", out_dir=out_dir)
        os.makedirs(out_dir, exist_ok=True)
        json.dump({"format": "something-else/9", "cells": {}},
                  open(path, "w"))
        with pytest.raises(ValueError, match="unsupported"):
            run_checkpointed([{"id": "x"}], "demo", jobs=1,
                             out_dir=out_dir)


class TestCorruptedCheckpoint:
    """A damaged checkpoint is a typed, named error — never a bare
    ``JSONDecodeError`` pointing at nothing."""

    def damaged(self, tmp_path, body='{"format": "x", trunc'):
        out_dir = str(tmp_path / "ckpt")
        os.makedirs(out_dir, exist_ok=True)
        path = checkpoint_path("demo", out_dir=out_dir)
        open(path, "w").write(body)
        return out_dir, path

    def test_truncated_json_raises_typed_error(self, tmp_path):
        out_dir, path = self.damaged(tmp_path)
        with pytest.raises(CheckpointError,
                           match="truncated or corrupted") as info:
            load_checkpoint(path)
        assert info.value.path == path
        assert path in str(info.value)     # names the culprit file
        assert isinstance(info.value, ReproError)
        assert isinstance(info.value, ValueError)
        assert not isinstance(info.value, json.JSONDecodeError)

    def test_run_checkpointed_propagates_by_default(self, marker_pool,
                                                    tmp_path):
        out_dir, path = self.damaged(tmp_path)
        with pytest.raises(CheckpointError, match="corrupted"):
            run_checkpointed([{"id": "x"}], "demo", jobs=1,
                             out_dir=out_dir)

    def test_malformed_cells_table_rejected(self, tmp_path):
        out_dir, path = self.damaged(
            tmp_path, '{"format": "%s", "cells": []}'
            % CHECKPOINT_FORMAT)
        with pytest.raises(CheckpointError, match="cells table"):
            load_checkpoint(path)

    def test_missing_checkpoint_is_empty_not_error(self, tmp_path):
        path = checkpoint_path("never", out_dir=str(tmp_path))
        assert load_checkpoint(path) == {}

    def test_fallback_fresh_warns_and_runs(self, marker_pool,
                                           tmp_path):
        out_dir, path = self.damaged(tmp_path)
        cells = [{"id": "a"}, {"id": "b"}]
        with pytest.warns(RuntimeWarning,
                          match="resuming from a fresh run"):
            records = run_checkpointed(cells, "demo", jobs=1,
                                       out_dir=out_dir,
                                       fallback_fresh=True)
        assert [r.status for r in records] == ["ok", "ok"]
        assert not any(r.from_checkpoint for r in records)
        # the fresh run rewrote a valid checkpoint over the wreck
        assert len(load_checkpoint(path)) == 2

    def test_fallback_not_needed_no_warning(self, marker_pool,
                                            tmp_path):
        out_dir = str(tmp_path / "ckpt")
        cells = [{"id": "a"}]
        run_checkpointed(cells, "demo", jobs=1, out_dir=out_dir)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            records = run_checkpointed(cells, "demo", jobs=1,
                                       out_dir=out_dir,
                                       fallback_fresh=True)
        assert records[0].from_checkpoint


class TestGridReport:
    def test_counts_and_summary(self, marker_pool, tmp_path):
        out_dir = str(tmp_path / "ckpt")
        cells = [{"id": "a"}, {"id": "b",
                               "need": str(tmp_path / "never")}]
        report = run_grid(cells, "rep", jobs=1, out_dir=out_dir)
        assert report.counts == {"ok": 1, "failed": 1}
        lines = report.summary_lines()
        assert lines[0].startswith("grid rep:")
        assert any("failed" in line for line in lines[1:])
