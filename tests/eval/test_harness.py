"""Evaluation harness: runner semantics, report rendering, registry."""

import pytest

from repro.eval import (HANG, INCOMPATIBLE, INVALID, OK, SYSTEM_NAMES,
                        make_runtime, run_matrix, run_workload, table2)
from repro.eval.report import format_table, geomean
from repro.eval.systems import workload_variant


class TestSystems:
    def test_all_systems_instantiate(self):
        for name in SYSTEM_NAMES:
            runtime = make_runtime(name)
            assert runtime is not None

    def test_unknown_system_raises(self):
        with pytest.raises(KeyError):
            make_runtime("magic")

    def test_manual_runs_fixed_variant(self):
        assert workload_variant("manual") == "fixed"
        assert workload_variant("tmi-protect") == "default"


class TestRunner:
    def test_ok_outcome(self):
        outcome = run_workload("swaptions", "pthreads", scale=0.05)
        assert outcome.ok and outcome.status == OK
        assert outcome.cycles > 0

    def test_incompatible_outcome(self):
        outcome = run_workload("ocean-ncp", "sheriff-detect", scale=0.05)
        assert outcome.status == INCOMPATIBLE
        assert outcome.result is None

    def test_hang_outcome(self):
        outcome = run_workload("cholesky", "sheriff-protect")
        assert outcome.status == HANG

    def test_invalid_outcome(self):
        outcome = run_workload("shptr-relaxed", "sheriff-protect",
                               scale=0.3)
        assert outcome.status == INVALID

    def test_matrix_shape(self):
        grid = run_matrix(["swaptions", "histogram"],
                          ["pthreads", "tmi-alloc"], scale=0.05)
        assert set(grid) == {"swaptions", "histogram"}
        assert set(grid["swaptions"]) == {"pthreads", "tmi-alloc"}
        assert all(o.ok for row in grid.values()
                   for o in row.values())


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [(1, 2.5), ("xx", "y")],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text

    def test_geomean(self):
        assert geomean([2, 8]) == pytest.approx(4.0)
        assert geomean([]) == 0.0
        assert geomean([0, 5]) == pytest.approx(5.0)

    def test_table2_renders_without_running_anything(self):
        result = table2()
        assert "TSO" in result.text
        assert "[PTSB]" in result.text
