"""Lemma 3.1 at system level: race-free programs produce identical
results with and without a PTSB.

The paper's correctness argument rests on this: breaking aligned
multi-byte store atomicity requires a data race, so Sheriff-style
whole-memory PTSBs are safe for lock-disciplined programs.  We run the
same lock-synchronized program under every runtime and demand
bit-identical final memory.
"""

import pytest

from repro.baselines import LaserRuntime, PthreadsRuntime, SheriffRuntime
from repro.core import TmiConfig, TmiRuntime
from repro.engine import Engine, Program
from repro.isa import Binary

RUNTIMES = [
    ("pthreads", lambda: PthreadsRuntime()),
    ("sheriff", lambda: SheriffRuntime("protect")),
    ("tmi", lambda: TmiRuntime("protect")),
    ("laser", lambda: LaserRuntime(TmiConfig())),
]


def synchronized_program(results):
    """Workers make interleaved multi-byte writes to shared slots,
    always under a lock; final memory must be determined."""
    binary = Binary("lemma")
    ld = binary.load_site("ld", 4)
    st = binary.store_site("st", 4)

    def main(t):
        shared = yield from t.malloc(4096, align=64)
        m = yield from t.mutex()

        def worker(w):
            for i in range(400):
                slot = shared + ((i * 3 + w.tid) % 16) * 4
                yield from w.lock(m)
                value = yield from w.load(slot, 4, site=ld)
                yield from w.store(slot, (value + w.tid * 7 + i)
                                   & 0xFFFFFFFF, 4, site=st)
                yield from w.unlock(m)

        tids = []
        for _ in range(4):
            tid = yield from t.spawn(worker)
            tids.append(tid)
        for tid in tids:
            yield from t.join(tid)
        final = []
        for i in range(16):
            value = yield from t.load(shared + i * 4, 4, site=ld)
            final.append(value)
        results.append(final)

    return Program("lemma", binary, main, nthreads=4)


class TestLemma31:
    def test_all_runtimes_agree_on_final_memory(self):
        snapshots = {}
        for name, factory in RUNTIMES:
            results = []
            Engine(synchronized_program(results), factory()).run()
            snapshots[name] = results[0]
        reference = snapshots["pthreads"]
        for name, snapshot in snapshots.items():
            assert snapshot == reference, (
                f"{name} diverged from pthreads: {snapshot} "
                f"vs {reference}")

    @pytest.mark.parametrize("name,factory", RUNTIMES)
    def test_each_runtime_deterministic(self, name, factory):
        a, b = [], []
        Engine(synchronized_program(a), factory()).run()
        Engine(synchronized_program(b), factory()).run()
        assert a == b
