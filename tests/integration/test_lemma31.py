"""Lemma 3.1 at system level: race-free programs produce identical
results with and without a PTSB.

The paper's correctness argument rests on this: breaking aligned
multi-byte store atomicity requires a data race, so Sheriff-style
whole-memory PTSBs are safe for lock-disciplined programs.  We run the
same lock-synchronized program under every runtime and demand
bit-identical final memory.
"""

import pytest

from repro.baselines import LaserRuntime, PthreadsRuntime, SheriffRuntime
from repro.core import TmiConfig, TmiRuntime
from repro.engine import Engine, Program
from repro.isa import Binary

RUNTIMES = [
    ("pthreads", lambda: PthreadsRuntime()),
    ("sheriff", lambda: SheriffRuntime("protect")),
    ("tmi", lambda: TmiRuntime("protect")),
    ("laser", lambda: LaserRuntime(TmiConfig())),
]


def synchronized_program(results):
    """Workers make interleaved multi-byte writes to shared slots,
    always under a lock; final memory must be determined."""
    binary = Binary("lemma")
    ld = binary.load_site("ld", 4)
    st = binary.store_site("st", 4)

    def main(t):
        shared = yield from t.malloc(4096, align=64)
        m = yield from t.mutex()

        def worker(w):
            for i in range(400):
                slot = shared + ((i * 3 + w.tid) % 16) * 4
                yield from w.lock(m)
                value = yield from w.load(slot, 4, site=ld)
                yield from w.store(slot, (value + w.tid * 7 + i)
                                   & 0xFFFFFFFF, 4, site=st)
                yield from w.unlock(m)

        tids = []
        for _ in range(4):
            tid = yield from t.spawn(worker)
            tids.append(tid)
        for tid in tids:
            yield from t.join(tid)
        final = []
        for i in range(16):
            value = yield from t.load(shared + i * 4, 4, site=ld)
            final.append(value)
        results.append(final)

    return Program("lemma", binary, main, nthreads=4)


class TestLemma31:
    def test_all_runtimes_agree_on_final_memory(self):
        snapshots = {}
        for name, factory in RUNTIMES:
            results = []
            Engine(synchronized_program(results), factory()).run()
            snapshots[name] = results[0]
        reference = snapshots["pthreads"]
        for name, snapshot in snapshots.items():
            assert snapshot == reference, (
                f"{name} diverged from pthreads: {snapshot} "
                f"vs {reference}")

    @pytest.mark.parametrize("name,factory", RUNTIMES)
    def test_each_runtime_deterministic(self, name, factory):
        a, b = [], []
        Engine(synchronized_program(a), factory()).run()
        Engine(synchronized_program(b), factory()).run()
        assert a == b


class TestLemma31UnderFuzzedSchedules:
    """Metamorphic form of the lemma: for every repair-suite workload,
    the TMI-repaired final state must equal the pthreads final state
    not just on the default schedule but under seeded schedule
    perturbation — the repair may change timing, never results."""

    SCALE = 0.04
    FUZZ_SEEDS = range(8)

    def _repair_suite(self):
        from repro.workloads.registry import REPAIR_SUITE
        return REPAIR_SUITE

    @pytest.mark.parametrize("workload", [
        "histogram", "histogramfs", "lreg", "stringmatch", "lu-ncb",
        "leveldb-fs", "spinlockpool", "shptr-relaxed", "shptr-lock"])
    def test_tmi_matches_pthreads_under_fuzz(self, workload):
        from repro.eval.runner import run_workload
        baseline = run_workload(workload, "pthreads", scale=self.SCALE,
                                collect_state=True)
        assert baseline.ok, (workload, baseline.status, baseline.detail)
        assert baseline.final_state, (
            f"{workload} has no final-state digest; give it "
            f"result_env_keys or a final_state override")
        for seed in self.FUZZ_SEEDS:
            fuzzed = run_workload(
                workload, "tmi-protect", scale=self.SCALE,
                collect_state=True,
                schedule={"policy": "random", "seed": seed})
            assert fuzzed.ok, (workload, seed, fuzzed.status,
                               fuzzed.detail)
            assert fuzzed.final_state == baseline.final_state, (
                f"{workload}: TMI-repaired final state diverged from "
                f"pthreads under schedule seed {seed}")

    def test_parametrization_covers_whole_repair_suite(self):
        # keep the explicit list above honest if the registry grows
        listed = {"histogram", "histogramfs", "lreg", "stringmatch",
                  "lu-ncb", "leveldb-fs", "spinlockpool",
                  "shptr-relaxed", "shptr-lock"}
        assert set(self._repair_suite()) == listed
