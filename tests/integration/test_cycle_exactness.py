"""Cycle-exactness regression goldens.

``golden_pr1.json`` holds simulated cycle counts, HITM totals, and op
counters for one small workload per suite family (phoenix, parsec,
splash2x, boost, apps/leveldb), each under plain pthreads and full
tmi-protect.  The numbers were captured *before* the interpreter fast
paths landed (owner micro-cache, type-keyed dispatch, batched
``AccessRun``, translation cache, parallel grid runner), so this test
pins the property those optimizations promised: they change how fast
the simulator runs, never what it computes.

If a change legitimately alters simulated behaviour (a cost-model or
coherence change, not an optimization), regenerate the file::

    PYTHONPATH=src python tests/integration/test_cycle_exactness.py

and explain the regeneration in the commit message.
"""

import json
from pathlib import Path

import pytest

GOLDEN_PATH = Path(__file__).with_name("golden_pr1.json")
GOLDENS = json.loads(GOLDEN_PATH.read_text())

#: Fields every run must reproduce bit-for-bit.
EXACT_FIELDS = ("status", "cycles", "hitm_loads", "hitm_stores",
                "data_ops", "sync_ops", "validated")


#: Hint printed when goldens drift; keep it copy-pasteable.
REGEN_HINT = ("regenerate with: PYTHONPATH=src python "
              "tests/integration/test_cycle_exactness.py "
              "(and explain why in the commit message)")


def observe(name, system, scale, schedule=None):
    from repro.eval.runner import run_workload
    outcome = run_workload(name, system, scale=scale, schedule=schedule)
    result = outcome.result
    return {
        "status": outcome.status,
        "cycles": result.cycles if result else None,
        "hitm_loads": result.hitm_loads if result else None,
        "hitm_stores": result.hitm_stores if result else None,
        "data_ops": result.data_ops if result else None,
        "sync_ops": result.sync_ops if result else None,
        "validated": result.validated if result else None,
    }


@pytest.mark.parametrize("key", sorted(GOLDENS))
def test_workload_is_cycle_exact(key):
    golden = GOLDENS[key]
    name, system = key.split("/")
    got = observe(name, system, golden["scale"])
    mismatches = {field: (got[field], golden[field])
                  for field in EXACT_FIELDS
                  if got[field] != golden[field]}
    assert not mismatches, (
        f"{key} diverged from pre-optimization golden "
        f"(got, want): {mismatches}; {REGEN_HINT}")


@pytest.mark.parametrize("key", sorted(GOLDENS))
def test_default_policy_is_byte_identical(key):
    """SchedulePolicy('default') must match the heap scheduler —
    pinned against the same goldens, so the per-access decision points
    the policy loop adds provably cost zero simulated cycles."""
    golden = GOLDENS[key]
    name, system = key.split("/")
    got = observe(name, system, golden["scale"],
                  schedule={"policy": "default"})
    mismatches = {field: (got[field], golden[field])
                  for field in EXACT_FIELDS
                  if got[field] != golden[field]}
    assert not mismatches, (
        f"{key} under the default schedule policy diverged from the "
        f"policy-less golden (got, want): {mismatches}")


def test_goldens_are_fresh():
    """Structural freshness: every golden entry carries every pinned
    field and matches the current workload registry, so a stale or
    hand-edited golden file fails loudly with the regeneration hint."""
    from repro.workloads import all_names
    from repro.workloads import get as get_workload
    assert GOLDENS, f"golden file is empty; {REGEN_HINT}"
    names = set(all_names())
    for key, golden in GOLDENS.items():
        name, system = key.split("/")
        assert name in names, (
            f"golden {key} references unknown workload; {REGEN_HINT}")
        missing = [field for field in EXACT_FIELDS + ("scale", "suite")
                   if field not in golden]
        assert not missing, (
            f"golden {key} is missing fields {missing}; {REGEN_HINT}")
        assert golden["suite"] == get_workload(name).suite, (
            f"golden {key} suite drifted; {REGEN_HINT}")
        assert golden["status"] == "ok" and golden["validated"], (
            f"golden {key} pins a failing run; {REGEN_HINT}")


def _regenerate():
    from repro.eval.runner import run_workload
    from repro.workloads import get as get_workload
    fresh = {}
    for key, golden in sorted(GOLDENS.items()):
        name, system = key.split("/")
        entry = observe(name, system, golden["scale"])
        entry["scale"] = golden["scale"]
        entry["suite"] = get_workload(name).suite
        fresh[key] = entry
    GOLDEN_PATH.write_text(json.dumps(fresh, indent=1, sort_keys=True)
                           + "\n")
    print(f"rewrote {GOLDEN_PATH} ({len(fresh)} entries)")


if __name__ == "__main__":
    _regenerate()
