"""The paper's correctness studies (sections 2.2 and 4.5).

- Figure 11: canneal's asm atomic swaps corrupt under a PTSB without
  code-centric consistency (Sheriff), and stay correct under TMI.
- Figure 12: cholesky's volatile-flag synchronization hangs under
  Sheriff and completes under TMI.
- shptr-relaxed's relaxed-atomic refcounts corrupt under Sheriff.
"""

import pytest

from repro.baselines import PthreadsRuntime, SheriffRuntime
from repro.core import TmiConfig, TmiRuntime
from repro.engine import Engine
from repro.errors import HangError
from repro.eval import run_workload
from repro.workloads import get

SIMLARGE = 64 * 1024 * 1024


def canneal(scale=0.3):
    workload = get("canneal", scale=scale)
    workload.footprint = SIMLARGE          # the paper's simlarge input
    return workload


class TestCannealFigure11:
    def test_correct_under_pthreads(self):
        result = Engine(canneal().build(), PthreadsRuntime()).run()
        assert result.validated

    def test_sheriff_corrupts_the_grid(self):
        result = Engine(canneal().build(), SheriffRuntime("detect")).run()
        assert not result.validated
        assert "corrupted" in result.error

    def test_tmi_preserves_the_grid(self):
        result = Engine(canneal().build(), TmiRuntime("detect")).run()
        assert result.validated

    def test_tmi_without_code_centric_corrupts(self):
        """The ablation: TMI with consistency callbacks disabled and a
        PTSB over everything behaves like Sheriff — the atomic swaps
        either corrupt the grid or livelock on stale private lock
        words."""
        config = TmiConfig(code_centric=False, targeted=False,
                           huge_pages=False)
        workload = canneal()
        runtime = TmiRuntime("protect", config)
        engine = Engine(workload.build(), runtime)
        try:
            result = engine.run()
        except AssertionError as exc:
            assert "livelock" in str(exc)
            return
        if runtime.stats.conversions:
            assert not result.validated


class TestCholeskyFigure12:
    def test_completes_under_pthreads(self):
        outcome = run_workload("cholesky", "pthreads")
        assert outcome.ok
        assert outcome.result.env.get("completed")

    def test_hangs_under_sheriff(self):
        outcome = run_workload("cholesky", "sheriff-protect")
        assert outcome.status == "hang"

    def test_completes_under_tmi(self):
        outcome = run_workload("cholesky", "tmi-protect")
        assert outcome.ok

    def test_completes_under_laser(self):
        """LASER's TSO store buffer preserves the flag semantics."""
        outcome = run_workload("cholesky", "laser")
        assert outcome.ok


class TestSharedPtrAtomics:
    def test_sheriff_loses_refcount_updates(self):
        outcome = run_workload("shptr-relaxed", "sheriff-protect",
                               scale=0.4)
        assert outcome.status == "invalid"
        assert "refcount" in outcome.detail

    def test_tmi_preserves_refcounts_while_repairing(self):
        outcome = run_workload("shptr-relaxed", "tmi-protect", scale=0.4)
        assert outcome.ok
        assert outcome.result.runtime_report["repaired"]

    def test_mutex_variant_correct_everywhere(self):
        for system in ("pthreads", "sheriff-protect", "tmi-protect",
                       "laser"):
            outcome = run_workload("shptr-lock", system, scale=0.3)
            assert outcome.ok, (system, outcome.detail)
