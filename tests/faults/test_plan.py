"""FaultPlan artifacts: versioned round-trips and rate tables."""

import json
import os

import pytest

from repro.errors import FaultPlanError
from repro.faults import (FAULT_PLAN_FORMAT, FaultPlan, default_rates)


def make_plan():
    return FaultPlan(workload="histogram", system="tmi-protect",
                     seed=11, scale=0.1,
                     rates={"ptrace.fork_fail": 0.2},
                     limits={"ptrace.fork_fail": 5})


class TestRoundTrip:
    def test_to_from_dict(self):
        plan = make_plan()
        data = plan.to_dict()
        assert data["format"] == FAULT_PLAN_FORMAT
        clone = FaultPlan.from_dict(data)
        assert clone == plan

    def test_wrong_format_rejected(self):
        data = make_plan().to_dict()
        data["format"] = "repro-fault-plan/999"
        with pytest.raises(FaultPlanError, match="unsupported"):
            FaultPlan.from_dict(data)

    def test_save_load_default_name(self, tmp_path):
        plan = make_plan()
        path = plan.save(out_dir=str(tmp_path))
        assert os.path.basename(path) == "histogram-tmi-protect-f11.json"
        assert json.load(open(path))["format"] == FAULT_PLAN_FORMAT
        assert FaultPlan.load(path) == plan


class TestValidation:
    def test_unknown_point_rejected_at_construction(self):
        with pytest.raises(FaultPlanError, match="unknown fault point"):
            FaultPlan(workload="histogram", rates={"bad.point": 0.1})

    def test_spec_feeds_the_injector(self):
        spec = make_plan().spec()
        assert set(spec) == {"seed", "rates", "limits"}
        assert spec["seed"] == 11
        assert spec["rates"] == {"ptrace.fork_fail": 0.2}


class TestDefaultRates:
    def test_intensity_scales(self):
        base = default_rates()
        double = default_rates(2.0)
        assert double["perf.record_drop"] == \
            pytest.approx(2 * base["perf.record_drop"])

    def test_rates_capped_below_certainty(self):
        assert all(rate <= 0.9 for rate in default_rates(50.0).values())
