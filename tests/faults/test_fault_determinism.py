"""Fault determinism and the metamorphic repair oracle.

Same seed + same plan must produce byte-identical results regardless
of ``REPRO_JOBS``, and a faulted ``tmi-protect`` run must leave the
workload's final state equal to the fault-free ``pthreads`` baseline
(repair plus recovery never changes program semantics).
"""

import json

import pytest

from repro.eval.parallel import run_cells
from repro.eval.runner import run_workload
from repro.faults import default_rates

CELL = dict(name="histogramfs", system="tmi-protect", scale=0.1,
            collect_state=True, collect_metrics=True,
            faults={"seed": 3, "rates": default_rates(2.0)})


def fingerprint(outcome):
    """Byte-comparable digest of everything a fault may perturb."""
    return json.dumps({
        "status": outcome.status,
        "cycles": outcome.cycles,
        "faults": outcome.faults,
        "metrics": outcome.metrics,
        "state": outcome.final_state,
    }, sort_keys=True, default=str)


class TestJobCountIndependence:
    def test_identical_across_serial_and_pooled(self):
        serial = run_cells([dict(CELL), dict(CELL)], jobs=1)
        pooled = run_cells([dict(CELL), dict(CELL)], jobs=2)
        prints = {fingerprint(o) for o in serial + pooled}
        assert len(prints) == 1

    def test_faults_actually_fired(self):
        outcome = run_workload(**CELL)
        assert outcome.faults["counts"], \
            "plan injected nothing; the test proves nothing"
        assert outcome.faults["spec"]["seed"] == 3


class TestZeroCostWhenEmpty:
    def test_armed_but_empty_injector_matches_plain_run(self):
        plain = run_workload(name="histogramfs", system="tmi-protect",
                             scale=0.1)
        armed = run_workload(name="histogramfs", system="tmi-protect",
                             scale=0.1, faults={"seed": 0, "rates": {}})
        assert armed.cycles == plain.cycles
        assert armed.status == plain.status
        assert armed.faults["counts"] == {}


class TestMetamorphicOracle:
    @pytest.mark.parametrize("seed", [1, 5])
    def test_faulted_repair_preserves_final_state(self, seed):
        baseline = run_workload(name="histogramfs", system="pthreads",
                                scale=0.1, collect_state=True)
        faulted = run_workload(
            name="histogramfs", system="tmi-protect", scale=0.1,
            collect_state=True,
            faults={"seed": seed, "rates": default_rates(2.0)})
        assert baseline.status == "ok"
        assert faulted.status == "ok"
        assert faulted.final_state == baseline.final_state
