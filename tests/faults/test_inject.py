"""FaultInjector determinism: seeded, point-isolated, limit-aligned."""

import pytest

from repro.errors import FaultPlanError
from repro.faults import FAULT_POINTS, FaultInjector

POINT = "ptrace.attach_timeout"
OTHER = "ptsb.commit_conflict"


def decisions(injector, point, n=200):
    return [injector.fire(point) for _ in range(n)]


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a = FaultInjector(seed=7, rates={POINT: 0.3})
        b = FaultInjector(seed=7, rates={POINT: 0.3})
        assert decisions(a, POINT) == decisions(b, POINT)

    def test_different_seeds_differ(self):
        a = FaultInjector(seed=7, rates={POINT: 0.3})
        b = FaultInjector(seed=8, rates={POINT: 0.3})
        assert decisions(a, POINT) != decisions(b, POINT)

    def test_point_streams_are_independent(self):
        # Arming (and drawing from) a second point must not reshuffle
        # the first point's decision sequence.
        alone = FaultInjector(seed=3, rates={POINT: 0.3})
        mixed = FaultInjector(seed=3, rates={POINT: 0.3, OTHER: 0.5})
        got_alone, got_mixed = [], []
        for _ in range(200):
            got_alone.append(alone.fire(POINT))
            got_mixed.append(mixed.fire(POINT))
            mixed.fire(OTHER)       # interleaved draws elsewhere
        assert got_alone == got_mixed

    def test_zero_rate_never_fires(self):
        injector = FaultInjector(seed=1, rates={POINT: 0.0})
        assert not any(decisions(injector, POINT))
        assert injector.fired_counts() == {}

    def test_unarmed_point_never_fires(self):
        injector = FaultInjector(seed=1, rates={POINT: 1.0})
        assert injector.fire(OTHER) is False


class TestValidation:
    def test_unknown_rate_point_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault point"):
            FaultInjector(rates={"nope.bogus": 0.5})

    def test_unknown_limit_point_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault point"):
            FaultInjector(limits={"nope.bogus": 2})

    def test_registry_points_have_descriptions(self):
        for point, text in FAULT_POINTS.items():
            assert "." in point and text


class TestLimits:
    def test_limit_caps_firings_without_shifting_stream(self):
        # A limited plan agrees with the unlimited plan on *which*
        # draws fire, up to the cap: the stream advances past it.
        free = FaultInjector(seed=5, rates={POINT: 0.5})
        capped = FaultInjector(seed=5, rates={POINT: 0.5},
                               limits={POINT: 3})
        fired_free = [i for i in range(100) if free.fire(POINT)]
        fired_capped = [i for i in range(100) if capped.fire(POINT)]
        assert fired_capped == fired_free[:3]
        assert capped.counts[POINT] == 3


class TestLogging:
    def test_context_recorded_in_firing_order(self):
        injector = FaultInjector(seed=2, rates={POINT: 1.0})
        injector.fire(POINT, cycle=10, tid=1)
        injector.fire(POINT, cycle=20, tid=2)
        log = injector.log()
        assert [e["seq"] for e in log] == [0, 1]
        assert log[0]["cycle"] == 10 and log[1]["tid"] == 2
        assert all(e["point"] == POINT for e in log)

    def test_pending_events_cursor(self):
        injector = FaultInjector(seed=2, rates={POINT: 1.0})
        injector.fire(POINT)
        assert len(injector.pending_events()) == 1
        assert injector.pending_events() == []
        injector.fire(POINT)
        injector.fire(POINT)
        assert len(injector.pending_events()) == 2

    def test_fired_counts_only_nonzero(self):
        injector = FaultInjector(seed=2, rates={POINT: 1.0,
                                                OTHER: 0.0})
        injector.fire(POINT)
        injector.fire(OTHER)
        assert injector.fired_counts() == {POINT: 1}
