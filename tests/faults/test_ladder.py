"""DegradationLadder: budgets, staged fallback, cooldown re-arm."""

from repro.core.config import TmiConfig
from repro.core.ladder import LEVELS, DegradationLadder


def make_ladder(on_transition=None, **overrides):
    config = TmiConfig(episode_failure_budget=2,
                       ladder_cooldown_intervals=3,
                       perf_fault_budget=10, **overrides)
    return DegradationLadder(config, on_transition=on_transition)


class TestLevels:
    def test_level_order_weakest_first(self):
        assert LEVELS == ("alloc", "detect", "protect")

    def test_starts_fully_armed(self):
        ladder = make_ladder()
        assert ladder.level == "protect"
        assert ladder.level_index == 2
        assert ladder.allows_repair() and ladder.allows_detection()

    def test_fault_free_never_moves(self):
        ladder = make_ladder()
        for interval in range(50):
            ladder.note_perf_drops(0, interval * 1000, interval)
            ladder.tick(interval * 1000, interval)
        assert ladder.level == "protect"
        assert ladder.transitions == []


class TestEpisodeBudget:
    def test_failures_below_budget_stay_armed(self):
        ladder = make_ladder()
        ladder.note_episode_failure(100, 1, "attach-timeout")
        assert ladder.level == "protect"

    def test_budget_exhaustion_demotes_to_detect(self):
        ladder = make_ladder()
        ladder.note_episode_failure(100, 1, "attach-timeout")
        ladder.note_episode_failure(200, 1, "fork-failure")
        assert ladder.level == "detect"
        assert not ladder.allows_repair()
        assert ladder.allows_detection()
        assert ladder.transitions[-1]["reason"] == "fork-failure"

    def test_success_resets_streak(self):
        ladder = make_ladder()
        ladder.note_episode_failure(100, 1, "attach-timeout")
        ladder.note_episode_success()
        ladder.note_episode_failure(200, 2, "attach-timeout")
        assert ladder.level == "protect"


class TestPerfBudget:
    def test_record_loss_demotes(self):
        ladder = make_ladder()
        ladder.note_perf_drops(9, 100, 1)
        assert ladder.level == "protect"
        ladder.note_perf_drops(12, 200, 2)
        assert ladder.level == "detect"

    def test_loss_can_demote_all_the_way_to_alloc(self):
        ladder = make_ladder()
        ladder.note_perf_drops(10, 100, 1)
        ladder.note_perf_drops(20, 200, 2)
        assert ladder.level == "alloc"
        assert not ladder.allows_detection()
        # further loss at the floor is a no-op, not an error
        ladder.note_perf_drops(30, 300, 3)
        assert ladder.level == "alloc"


class TestCooldown:
    def degrade(self, ladder, interval=1):
        ladder.note_episode_failure(100, interval, "attach-timeout")
        ladder.note_episode_failure(200, interval, "attach-timeout")

    def test_rearm_after_cooldown(self):
        ladder = make_ladder()
        self.degrade(ladder)
        ladder.tick(300, 2)
        ladder.tick(400, 3)
        assert ladder.level == "detect"      # cooldown not elapsed
        ladder.tick(500, 4)
        assert ladder.level == "protect"
        assert ladder.transitions[-1]["reason"] == "cooldown-rearm"

    def test_rearm_resets_failure_streak(self):
        ladder = make_ladder()
        self.degrade(ladder)
        ladder.tick(500, 4)
        assert ladder.episode_failures == 0

    def test_permanent_force_lowers_ceiling(self):
        ladder = make_ladder()
        ladder.force_level("detect", 0, 0, "shm-exhausted",
                           permanent=True)
        assert ladder.level == "detect"
        for interval in range(1, 20):
            ladder.tick(interval * 1000, interval)
        assert ladder.level == "detect"      # never climbs past ceiling
        assert ladder.ceiling == "detect"


class TestTransitions:
    def test_callback_and_log_agree(self):
        seen = []
        ladder = make_ladder(on_transition=seen.append)
        ladder.note_episode_failure(100, 1, "attach-timeout")
        ladder.note_episode_failure(250, 1, "attach-timeout")
        assert seen == ladder.transitions
        info = seen[0]
        assert info["from"] == "protect" and info["to"] == "detect"
        assert info["cycle"] == 250 and info["interval"] == 1
