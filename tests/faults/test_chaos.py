"""Chaos harness: smoke campaign, artifacts, and plan replay."""

import json
import os

import pytest

from repro.faults import (FAULT_PLAN_FORMAT, FaultPlan, chaos_smoke,
                          default_plans, replay_plan)


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    out_dir = tmp_path_factory.mktemp("chaos")
    return chaos_smoke(seeds=3, jobs=1, out_dir=str(out_dir)), out_dir


class TestChaosSmoke:
    def test_all_checks_pass(self, smoke):
        result, _ = smoke
        assert result.ok, "\n".join(result.summary_lines())

    def test_every_cell_has_a_verdict(self, smoke):
        result, _ = smoke
        assert len(result.report.cells) == 3
        assert all(c.verdict in ("ok", "degraded")
                   for c in result.report.cells)

    def test_artifacts_written(self, smoke):
        result, out_dir = smoke
        for cell in result.report.cells:
            assert os.path.exists(cell.artifact)
            data = json.load(open(cell.artifact))
            assert data["format"] == FAULT_PLAN_FORMAT

    def test_artifact_replays(self, smoke):
        result, _ = smoke
        busiest = max(result.report.cells,
                      key=lambda c: sum(c.counts.values()))
        plan = FaultPlan.load(busiest.artifact)
        matches, detail, outcome = replay_plan(plan)
        assert matches, detail
        assert outcome.faults["counts"] == busiest.counts


class TestDefaultPlans:
    def test_seeds_cycle_workloads_and_intensities(self):
        plans = default_plans(5, workloads=("a-wl", "b-wl"), scale=0.2)
        assert [p.workload for p in plans] == \
            ["a-wl", "b-wl", "a-wl", "b-wl", "a-wl"]
        assert [p.seed for p in plans] == [0, 1, 2, 3, 4]
        assert plans[0].rates != plans[1].rates    # intensity steps
        assert all(p.scale == 0.2 for p in plans)
