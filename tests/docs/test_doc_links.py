"""Docs build check: links and code references must resolve.

Covers ``docs/*.md`` plus the root documentation set.  Two contracts:

- every relative markdown link targets a file that exists;
- every inline-code reference that names a repo path
  (``src/...``, ``tests/...``) or a ``repro.*`` dotted module/symbol
  resolves against the tree.

Docs that drift from the code fail here (and in CI's docs step) instead
of silently rotting.
"""

import importlib
import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))

#: Documentation whose links/references are enforced.
DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md",
        "docs/ARCHITECTURE.md", "docs/HARDWARE.md",
        "docs/ROBUSTNESS.md"]

_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
_CODE = re.compile(r"`([^`\n]+)`")
_PATH = re.compile(
    r"^(src|tests|docs|benchmarks|examples)/[A-Za-z0-9_./*-]+$")
_MODULE = re.compile(r"^repro(\.[A-Za-z_][A-Za-z0-9_]*)+$")


def _strip_fences(text):
    """Drop fenced code blocks; prose and inline code remain."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def _exists(base_dir, target):
    path = os.path.normpath(os.path.join(base_dir, target))
    return os.path.exists(path)


def _resolves(ref):
    """Whether a ``repro.*`` dotted reference imports.

    Tries the full path as a module, then as ``module.attribute`` —
    ``repro.obs.Tracer`` resolves via ``getattr(repro.obs, "Tracer")``.
    """
    try:
        importlib.import_module(ref)
        return True
    except ImportError:
        pass
    if "." not in ref:
        return False
    module_name, attr = ref.rsplit(".", 1)
    try:
        module = importlib.import_module(module_name)
    except ImportError:
        return False
    return hasattr(module, attr)


@pytest.mark.parametrize("doc", DOCS)
class TestDoc:
    def _text(self, doc):
        path = os.path.join(REPO, doc)
        assert os.path.exists(path), f"{doc} missing"
        return open(path).read()

    def test_relative_links_resolve(self, doc):
        base_dir = os.path.dirname(os.path.join(REPO, doc))
        broken = []
        for target in _LINK.findall(self._text(doc)):
            if target.startswith(("http://", "https://", "mailto:",
                                  "#")):
                continue
            target = target.split("#")[0]
            if target and not _exists(base_dir, target):
                broken.append(target)
        assert not broken, f"{doc}: broken links {broken}"

    def test_code_path_references_resolve(self, doc):
        broken = []
        for ref in _CODE.findall(_strip_fences(self._text(doc))):
            if not _PATH.match(ref) or "*" in ref or "<" in ref \
                    or "..." in ref:
                continue           # globs/placeholders aren't paths
            if not _exists(REPO, ref):
                broken.append(ref)
        assert not broken, f"{doc}: missing files {broken}"

    def test_module_references_resolve(self, doc):
        broken = []
        for ref in _CODE.findall(_strip_fences(self._text(doc))):
            if _MODULE.match(ref) and not _resolves(ref):
                broken.append(ref)
        assert not broken, f"{doc}: unresolvable modules {broken}"
