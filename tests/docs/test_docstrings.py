"""Public-API docstring presence (local stand-in for ruff's D1 rules).

CI additionally runs ruff with pydocstyle's presence rules on
``src/repro/obs`` and ``src/repro/eval``; this test enforces the same
contract — plus the engine and sim packages, whose classes are the
extension surface ``docs/ARCHITECTURE.md`` documents — without needing
ruff installed.
"""

import ast
import os

import repro

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Packages whose public defs must carry docstrings.
PACKAGES = ("repro/obs", "repro/eval", "repro/engine", "repro/sim",
            "repro/faults", "repro/service", "repro/mapping")

#: Dunders exempt from the presence rule (ruff's D105/D107 stance).
_EXEMPT = {"__init__", "__repr__", "__str__", "__eq__", "__hash__",
           "__len__", "__iter__", "__contains__", "__enter__",
           "__exit__", "__post_init__"}


def _is_public(name):
    return not name.startswith("_") or (name.startswith("__")
                                        and name.endswith("__"))


def _missing_in(path):
    tree = ast.parse(open(path).read(), filename=path)
    missing = []
    if ast.get_docstring(tree) is None:
        missing.append("<module>")

    def visit(node, qualname, depth):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name):
                    name = f"{qualname}{child.name}"
                    if ast.get_docstring(child) is None:
                        missing.append(name)
                    visit(child, name + ".", depth + 1)
            elif isinstance(child, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)):
                if child.name in _EXEMPT or not _is_public(child.name):
                    continue
                # nested helpers are implementation detail, not API
                if depth > 0 and not isinstance(node, ast.ClassDef):
                    continue
                if ast.get_docstring(child) is None:
                    missing.append(f"{qualname}{child.name}")

    visit(tree, "", 0)
    return missing


def _python_files():
    for package in PACKAGES:
        root = os.path.join(SRC, *package.split("/"))
        for dirpath, _dirs, files in os.walk(root):
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(dirpath, name)


class TestPublicDocstrings:
    def test_every_public_def_is_documented(self):
        problems = []
        for path in _python_files():
            rel = os.path.relpath(path, SRC)
            problems.extend(f"{rel}: {entry}"
                            for entry in _missing_in(path))
        assert not problems, (
            f"{len(problems)} public definition(s) without docstrings:\n"
            + "\n".join(problems))
