"""Workload suite sanity: every kernel runs, validates, and exposes
the traits the evaluation depends on."""

import pytest

from repro.baselines import PthreadsRuntime
from repro.engine import Engine
from repro.workloads import figure7_names, get, repair_suite_names

SCALE = 0.08


class TestRegistry:
    def test_thirty_five_figure7_workloads(self):
        assert len(figure7_names()) == 35

    def test_repair_suite_is_the_papers_nine(self):
        assert repair_suite_names() == [
            "histogram", "histogramfs", "lreg", "stringmatch", "lu-ncb",
            "leveldb-fs", "spinlockpool", "shptr-relaxed", "shptr-lock"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get("doom")

    def test_leveldb_fs_is_injected_variant(self):
        workload = get("leveldb-fs")
        assert workload.inject_bug
        assert workload.build().features.has_false_sharing


@pytest.mark.parametrize("name", figure7_names())
def test_workload_runs_and_validates(name):
    workload = get(name, scale=SCALE)
    result = Engine(workload.build(), PthreadsRuntime()).run()
    assert result.validated, (name, result.error)
    assert result.cycles > 0
    assert result.data_ops > 0


@pytest.mark.parametrize("name", repair_suite_names())
def test_fs_workloads_fix_reduces_contention(name):
    """The manual (FIXED) variant must genuinely remove the sharing:
    fewer HITM events and no slower than the buggy layout."""
    scale = 0.3
    buggy = Engine(get(name, scale=scale).build("default"),
                   PthreadsRuntime()).run()
    fixed = Engine(get(name, scale=scale).build("fixed"),
                   PthreadsRuntime()).run()
    assert fixed.cycles < buggy.cycles, name
    assert fixed.hitm_total < buggy.hitm_total, name


class TestFeatureDeclarations:
    def test_asm_users(self):
        for name in ("canneal", "dedup", "leveldb"):
            assert get(name).build().features.uses_asm, name

    def test_atomics_users(self):
        for name in ("canneal", "leveldb", "shptr-relaxed"):
            assert get(name).build().features.uses_atomics, name

    def test_volatile_flags(self):
        assert get("cholesky").build().features.uses_volatile_flags

    def test_native_footprints_scale_like_the_paper(self):
        GB = 1 << 30
        assert get("ocean-ncp").build().features.footprint_bytes \
            >= 20 * GB
        assert get("swaptions").build().features.footprint_bytes \
            < 100 * (1 << 20)

    def test_true_sharing_workloads(self):
        for name in ("kmeans", "leveldb", "streamcluster"):
            assert get(name).build().features.has_true_sharing, name


class TestDeterminism:
    @pytest.mark.parametrize("name", ["histogram", "canneal", "leveldb"])
    def test_repeat_runs_identical(self, name):
        a = Engine(get(name, scale=SCALE).build(),
                   PthreadsRuntime()).run()
        b = Engine(get(name, scale=SCALE).build(),
                   PthreadsRuntime()).run()
        assert a.cycles == b.cycles
        assert a.hitm_total == b.hitm_total
