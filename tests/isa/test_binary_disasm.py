"""Binary images and the detector's disassembler."""

import pytest

from repro.errors import ReproError
from repro.isa import Binary, Disassembler, TEXT_BASE


class TestBinary:
    def test_sites_get_distinct_pcs(self):
        binary = Binary("b")
        a = binary.load_site("a", 8)
        b = binary.store_site("b", 4)
        assert a.pc != b.pc
        assert a.pc >= TEXT_BASE

    def test_lookup_roundtrip(self):
        binary = Binary("b")
        site = binary.load_site("x", 2)
        assert binary.lookup(site.pc) is site
        assert binary.lookup(site.pc + 1) is None

    def test_auto_site_shared_per_kind_width(self):
        binary = Binary("b")
        a = binary.auto_site("load", 8)
        b = binary.auto_site("load", 8)
        c = binary.auto_site("load", 4)
        assert a is b and a is not c

    def test_unknown_kind_rejected(self):
        with pytest.raises(ReproError):
            Binary("b").site("jump", 8)

    def test_static_instruction_count(self):
        binary = Binary("b")
        binary.load_site("a", 8)
        binary.store_site("b", 8)
        assert binary.static_instruction_count == 2


class TestDisassembler:
    def test_decode_load_store_and_width(self):
        """Section 3.1: the detector recovers access kind and width
        from the PC by disassembling the binary."""
        binary = Binary("b")
        load = binary.load_site("ld", 1)
        store = binary.store_site("st", 4)
        disasm = Disassembler(binary)
        d_load = disasm.decode(load.pc)
        assert d_load.is_load and not d_load.is_store
        assert d_load.width == 1
        d_store = disasm.decode(store.pc)
        assert d_store.is_store and not d_store.is_load
        assert d_store.width == 4

    def test_atomics_decode_as_stores(self):
        binary = Binary("b")
        site = binary.atomic_site("rmw", 8)
        decoded = Disassembler(binary).decode(site.pc)
        assert decoded.is_store

    def test_unknown_pc_decodes_to_none(self):
        disasm = Disassembler(Binary("b"))
        assert disasm.decode(0xDEAD) is None

    def test_analyze_all_covers_text_segment(self):
        binary = Binary("b")
        for i in range(10):
            binary.load_site(f"l{i}", 8)
        table = Disassembler(binary).analyze_all()
        assert len(table) == 10

    def test_negative_lookups_are_cached(self):
        """PEBS skid lands on bogus PCs repeatedly; the miss must be
        cached so repeat decodes never re-probe the binary."""
        binary = Binary("b")
        disasm = Disassembler(binary)
        assert disasm.decode(0xDEAD) is None
        lookups = []
        original = binary.lookup

        def counting_lookup(pc):
            lookups.append(pc)
            return original(pc)

        binary.lookup = counting_lookup
        assert disasm.decode(0xDEAD) is None
        assert lookups == []

    def test_positive_lookups_are_cached(self):
        binary = Binary("b")
        site = binary.load_site("ld", 8)
        disasm = Disassembler(binary)
        first = disasm.decode(site.pc)

        def failing_lookup(pc):
            pytest.fail("cache miss")

        binary.lookup = failing_lookup
        assert disasm.decode(site.pc) is first
