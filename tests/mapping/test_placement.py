"""Placement policies: legacy equivalence, socket packing, grouping.

The round-robin policy must be *bit-for-bit* the engine's historical
``tid % (n_cores - 1)`` formula — the sockets=1 byte-identity story
depends on it — and every policy must be a pure function of
(topology, n_cores, groups): same inputs, same core for every tid,
regardless of construction order or process.
"""

import pytest

from repro.errors import SimulationError
from repro.mapping import (PLACEMENT_NAMES, affinity_groups,
                           make_placement)
from repro.mapping.placement import SharingAwarePlacement
from repro.sim.topology import Topology

TOPO2 = Topology(2, 5)


def test_round_robin_matches_legacy_formula():
    for n_cores in (2, 5, 8, 10):
        topo = Topology.fit(n_cores, 1)
        pl = make_placement("round-robin", topo, n_cores)
        for tid in range(32):
            assert pl.core_for(tid) == tid % (n_cores - 1)


def test_compact_equals_round_robin_on_dense_ids():
    compact = make_placement("compact", TOPO2, 10)
    rr = make_placement("round-robin", TOPO2, 10)
    assert [compact.core_for(t) for t in range(20)] == \
        [rr.core_for(t) for t in range(20)]


def test_scatter_alternates_sockets():
    pl = make_placement("scatter", TOPO2, 10)
    sockets = [TOPO2.socket_of(pl.core_for(t)) for t in range(8)]
    assert sockets == [0, 1, 0, 1, 0, 1, 0, 1]
    # never the service core
    assert all(pl.core_for(t) != 9 for t in range(40))


def test_sharing_aware_packs_groups_on_one_socket():
    groups = [[0, 2, 4, 6], [1, 3, 5, 7]]
    pl = SharingAwarePlacement(TOPO2, 10, groups=groups)
    for group in groups:
        placed = {TOPO2.socket_of(pl.core_for(t)) for t in group}
        assert len(placed) == 1, (group, placed)
    # the two groups land on different sockets
    assert (TOPO2.socket_of(pl.core_for(0))
            != TOPO2.socket_of(pl.core_for(1)))


def test_sharing_aware_avoids_fallback_front_cores():
    """Groups fill sockets from the top so the scatter fallback (main
    thread and friends) keeps the low cores to itself."""
    pl = SharingAwarePlacement(TOPO2, 10, groups=[[0, 1, 2]])
    group_cores = {pl.core_for(t) for t in (0, 1, 2)}
    fallback_first = pl.core_for(3)    # unplaced: scatter order
    assert fallback_first not in group_cores


def test_sharing_aware_no_groups_is_scatter():
    bare = SharingAwarePlacement(TOPO2, 10, groups=None)
    scatter = make_placement("scatter", TOPO2, 10)
    assert [bare.core_for(t) for t in range(20)] == \
        [scatter.core_for(t) for t in range(20)]


def test_placements_deterministic_and_in_range():
    for name in PLACEMENT_NAMES:
        groups = [[1, 2], [3, 4]] if name == "sharing-aware" else None
        a = make_placement(name, TOPO2, 10, groups=groups)
        b = make_placement(name, TOPO2, 10, groups=groups)
        cores = [a.core_for(t) for t in range(64)]
        assert cores == [b.core_for(t) for t in range(64)]
        assert all(0 <= c < 9 for c in cores)   # service core excluded


def test_make_placement_validation():
    with pytest.raises(SimulationError):
        make_placement("hilbert-curve", TOPO2, 10)
    with pytest.raises(SimulationError):
        make_placement("compact", TOPO2, 1)    # no application cores


# -------------------------------------------------- affinity grouping

def line(readers=(), writers=()):
    masks = {}
    for tid in readers:
        masks.setdefault(tid, [0, 0])[0] |= 1
    for tid in writers:
        masks.setdefault(tid, [0, 0])[1] |= 1
    return masks


def test_affinity_groups_union_find():
    lines = {
        0x1000: line(writers=(0, 1)),          # couples 0,1
        0x1040: line(readers=(1,), writers=(2,)),   # couples 1,2
        0x2000: line(writers=(4, 5)),          # couples 4,5
        0x3000: line(readers=(6, 7)),          # read-only: ignored
        0x4000: line(writers=(3,)),            # single thread: ignored
    }
    assert affinity_groups(lines, 8) == [[0, 1, 2], [4, 5]]


def test_affinity_groups_ignores_out_of_range_tids():
    lines = {0x1000: line(writers=(0, 99))}
    assert affinity_groups(lines, 8) == []


def test_affinity_groups_order_independent():
    a = {0x1000: line(writers=(0, 1)), 0x2000: line(writers=(2, 3))}
    b = dict(reversed(list(a.items())))
    assert affinity_groups(a, 8) == affinity_groups(b, 8)
