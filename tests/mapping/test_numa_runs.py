"""End-to-end NUMA runs: byte-identity, determinism, vector declines.

The contract stack, bottom to top:

* ``sockets=1`` (or no NUMA kwargs at all) runs are byte-identical to
  the historical machine — cycles, HITM, metrics, final state.
* Multi-socket grids are deterministic across ``REPRO_JOBS`` worker
  counts, like every other grid in the repo.
* The vector core declines batches touching remote-homed lines (their
  fills carry NUMA latency the batch kernels don't model) and the
  declined run still matches the pure-serial interpreter bit for bit.
* The placement policies move the cross-socket HITM needle in the
  direction the mapping survey claims.
"""

import pytest

from repro.eval.parallel import run_cells
from repro.eval.runner import run_workload

SCALE = 0.3


def observable(outcome):
    result = outcome.result
    counters = {key: value
                for key, value in outcome.metrics["counters"].items()
                if not key.startswith("vector.")}
    return (outcome.status, result.cycles if result else None,
            result.hitm_total if result else None,
            outcome.final_state, counters)


def test_sockets_one_is_byte_identical_to_default():
    plain = run_workload("racy-counters", "pthreads", scale=0.5,
                         collect_state=True, collect_metrics=True)
    numa = run_workload("racy-counters", "pthreads", scale=0.5,
                        sockets=1, collect_state=True,
                        collect_metrics=True)
    assert observable(plain) == observable(numa)


def test_round_robin_placement_is_byte_identical_to_default():
    plain = run_workload("histogram", "pthreads", scale=0.2,
                         collect_state=True, collect_metrics=True)
    placed = run_workload("histogram", "pthreads", scale=0.2,
                          sockets=1, placement="round-robin",
                          collect_state=True, collect_metrics=True)
    assert observable(plain) == observable(placed)


def test_numa_cells_deterministic_across_jobs(monkeypatch):
    cells = [dict(name="clique-counters", system="pthreads",
                  scale=SCALE, sockets=2, placement=placement,
                  collect_metrics=True, collect_state=True)
             for placement in ("compact", "scatter", "sharing-aware")]
    monkeypatch.setenv("REPRO_JOBS", "1")
    serial = [observable(o) for o in run_cells(cells)]
    monkeypatch.setenv("REPRO_JOBS", "3")
    fanned = [observable(o) for o in run_cells(cells)]
    assert serial == fanned


def test_vector_declines_remote_lines_and_stays_exact():
    """On a 2-socket machine the batch kernels refuse remote-homed
    lines; the fallback serial path keeps results bit-identical."""
    on = run_workload("histogram", "pthreads", scale=0.1, sockets=2,
                      placement="scatter", vector=True,
                      collect_state=True, collect_metrics=True)
    off = run_workload("histogram", "pthreads", scale=0.1, sockets=2,
                       placement="scatter", vector=False,
                       collect_state=True, collect_metrics=True)
    assert observable(on) == observable(off)


def test_vector_decline_counter_fires():
    from repro.baselines.pthreads import PthreadsRuntime
    from repro.engine import Engine
    from repro.mapping import make_placement
    from repro.sim.machine import Machine
    from repro.sim.topology import Topology
    from repro.workloads import get

    workload = get("histogram", scale=0.1)
    program = workload.build("default")
    n_cores = program.nthreads + 2
    topology = Topology.fit(n_cores, 2)
    machine = Machine(n_cores=n_cores, topology=topology,
                      pages="interleave")
    engine = Engine(program, PthreadsRuntime(), machine=machine,
                    placement=make_placement("scatter", topology,
                                             n_cores),
                    vector=True)
    engine.run()
    # interleaved pages guarantee every core sees remote-homed lines
    assert engine._vector is not None
    assert engine._vector.numa_declines > 0


@pytest.mark.parametrize("placement,expect_low",
                         [("compact", False),
                          ("scatter", True),
                          ("sharing-aware", True)])
def test_placement_moves_cross_socket_hitm(placement, expect_low):
    """clique-counters' parity cliques straddle sockets under compact
    and land on-socket under scatter/sharing-aware."""
    out = run_workload("clique-counters", "pthreads", scale=SCALE,
                       sockets=2, placement=placement,
                       collect_metrics=True)
    assert out.ok
    cross = out.metrics["counters"].get("machine.hitm.cross_socket", 0)
    if expect_low:
        assert cross < 100, cross
    else:
        assert cross > 10_000, cross
