"""Property test: the vector executor is semantically invisible.

The seeded ``random_program`` family (extended with private batched
stretches — ``load_run``/``store_run``/``rmw_seq``/``store_seq`` over
per-thread blocks, the shapes the vector kernels accelerate) must
produce identical final memory, cycle counts, HITM counts, op counts,
and metrics snapshots with the vector core forced on and forced off.
Hypothesis drives >= 50 generated programs; any divergence shrinks to
a minimal seed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import random_program
from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine


def run_once(seed, vector, **kwargs):
    env = {}
    program = random_program(seed, env=env, batched=True, **kwargs)
    engine = Engine(program, PthreadsRuntime(), vector=vector)
    result = engine.run()
    assert result.validated, result.error
    snap = engine.metrics().snapshot()
    # the vector.* counters are the one intentional difference: they
    # count host-side batching, which the serial run never performs
    counters = {key: value for key, value in snap["counters"].items()
                if not key.startswith("vector.")}
    return {
        "finals": env["finals"],
        "cycles": result.cycles,
        "hitm": (result.hitm_loads, result.hitm_stores),
        "data_ops": result.data_ops,
        "sync_ops": result.sync_ops,
        "counters": counters,
        "gauges": snap["gauges"],
        "histograms": snap["histograms"],
    }


@settings(max_examples=50, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16),
       nthreads=st.integers(2, 4),
       nlocks=st.integers(1, 3),
       ops=st.integers(10, 40))
def test_vector_on_off_identical(seed, nthreads, nlocks, ops):
    on = run_once(seed, True, nthreads=nthreads, nlocks=nlocks,
                  ops_per_thread=ops)
    off = run_once(seed, False, nthreads=nthreads, nlocks=nlocks,
                   ops_per_thread=ops)
    assert on == off


def test_batched_generator_exercises_the_kernels():
    """Guard against the property silently testing nothing: the
    batched generator must actually route ops through the vector
    executor for at least one fixed seed."""
    env = {}
    program = random_program(3, env=env, batched=True)
    engine = Engine(program, PthreadsRuntime(), vector=True)
    engine.run()
    counters = engine.metrics().snapshot()["counters"]
    assert counters["vector.batched_ops"] > 0
