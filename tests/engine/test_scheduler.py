"""Execution engine: scheduling, sync, determinism, stop-the-world."""

import pytest

from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine, Program
from repro.errors import DeadlockError, SimulationError
from repro.isa import Binary

from helpers import fs_counter_program, run_program


class TestBasicExecution:
    def test_malloc_load_store_roundtrip(self):
        def main(t):
            buf = yield from t.malloc(256)
            yield from t.store(buf + 8, 0xCAFE, 4)
            value = yield from t.load(buf + 8, 4)
            assert value == 0xCAFE

        result, _ = run_program(main)
        assert result.cycles > 0

    def test_compute_advances_clock(self):
        def main(t):
            yield from t.compute(12345)

        result, _ = run_program(main)
        assert result.cycles >= 12345

    def test_memory_initially_zero(self):
        def main(t):
            buf = yield from t.malloc(64)
            value = yield from t.load(buf, 8)
            assert value == 0

        run_program(main)

    def test_free_and_realloc(self):
        def main(t):
            a = yield from t.malloc(64)
            yield from t.free(a)
            b = yield from t.malloc(64)
            assert b == a          # size-class free list recycles

        run_program(main)

    def test_atomics_rmw_semantics(self):
        def main(t):
            buf = yield from t.malloc(64)
            old = yield from t.atomic_add(buf, 5, 8)
            assert old == 0
            old = yield from t.atomic_xchg(buf, 100, 8)
            assert old == 5
            old = yield from t.atomic_cas(buf, 100, 7, 8)
            assert old == 100
            old = yield from t.atomic_cas(buf, 999, 8, 8)
            assert old == 7        # failed CAS returns observed value
            value = yield from t.load(buf, 8)
            assert value == 7

        run_program(main)


class TestThreads:
    def test_spawn_join_and_shared_memory(self):
        def main(t):
            buf = yield from t.malloc(64)

            def worker(w):
                yield from w.store(buf, w.tid, 8)

            tid = yield from t.spawn(worker)
            yield from t.join(tid)
            value = yield from t.load(buf, 8)
            assert value == tid

        run_program(main)

    def test_join_after_exit_returns_quickly(self):
        def main(t):
            def worker(w):
                yield from w.compute(10)

            tid = yield from t.spawn(worker)
            yield from t.compute(100_000)      # worker long done
            yield from t.join(tid)

        run_program(main)

    def test_threads_run_on_distinct_cores(self):
        cores = {}

        def main(t):
            def worker(w):
                cores[w.tid] = w._thread.core
                yield from w.compute(10)

            tids = []
            for _ in range(3):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)

        run_program(main, nthreads=3)
        assert len(set(cores.values())) == 3


class TestMutex:
    def test_mutual_exclusion_counter(self):
        def main(t):
            buf = yield from t.malloc(64)
            m = yield from t.mutex()

            def worker(w):
                for _ in range(50):
                    yield from w.lock(m)
                    value = yield from w.load(buf, 8)
                    yield from w.store(buf, value + 1, 8)
                    yield from w.unlock(m)

            tids = []
            for _ in range(4):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)
            total = yield from t.load(buf, 8)
            assert total == 200

        run_program(main)

    def test_unlock_by_non_owner_raises(self):
        def main(t):
            m = yield from t.mutex()

            def worker(w):
                yield from w.unlock(m)

            tid = yield from t.spawn(worker)
            yield from t.lock(m)
            yield from t.join(tid)

        with pytest.raises(SimulationError):
            run_program(main)

    def test_contended_lock_serializes_time(self):
        def main(t):
            m = yield from t.mutex()

            def worker(w):
                yield from w.lock(m)
                yield from w.compute(10_000)
                yield from w.unlock(m)

            tids = []
            for _ in range(4):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)

        result, _ = run_program(main)
        assert result.cycles >= 40_000     # critical sections serialized


class TestBarrier:
    def test_barrier_synchronizes_arrivals(self):
        order = []

        def main(t):
            bar = yield from t.barrier(3)

            def worker(w):
                yield from w.compute(w.tid * 5_000)
                order.append(("before", w.tid))
                yield from w.barrier_wait(bar)
                order.append(("after", w.tid))

            tids = []
            for _ in range(3):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)

        run_program(main, nthreads=3)
        befores = [i for i, e in enumerate(order) if e[0] == "before"]
        afters = [i for i, e in enumerate(order) if e[0] == "after"]
        assert max(befores) < min(afters)

    def test_barrier_reusable_across_rounds(self):
        def main(t):
            bar = yield from t.barrier(2)
            buf = yield from t.malloc(64)

            def worker(w):
                for round_ in range(5):
                    yield from w.barrier_wait(bar)
                    if w.tid == 1:
                        yield from w.store(buf, round_ + 1, 8)
                    yield from w.barrier_wait(bar)
                    value = yield from w.load(buf, 8)
                    assert value == round_ + 1

            tids = []
            for _ in range(2):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)

        run_program(main, nthreads=2)

    def test_missing_party_deadlocks(self):
        def main(t):
            bar = yield from t.barrier(3)      # only 2 threads arrive

            def worker(w):
                yield from w.barrier_wait(bar)

            tids = []
            for _ in range(2):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)

        with pytest.raises(DeadlockError):
            run_program(main)


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self):
        r1 = Engine(fs_counter_program(iters=500),
                    PthreadsRuntime()).run()
        r2 = Engine(fs_counter_program(iters=500),
                    PthreadsRuntime()).run()
        assert r1.cycles == r2.cycles
        assert r1.hitm_loads == r2.hitm_loads
        assert r1.hitm_stores == r2.hitm_stores

    def test_false_sharing_slower_than_padded(self):
        # iteration counts must exceed the pthread_create stagger or
        # the workers never overlap in simulated time
        fs = Engine(fs_counter_program(iters=15_000, stride=8),
                    PthreadsRuntime()).run()
        padded = Engine(fs_counter_program(iters=15_000, stride=64),
                        PthreadsRuntime()).run()
        assert fs.cycles > 3 * padded.cycles
        assert fs.hitm_total > 10 * max(padded.hitm_total, 1)


class TestStopTheWorld:
    def test_stop_world_runs_callback_once_all_parked(self):
        seen = {}

        def main(t):
            def worker(w):
                for _ in range(200):
                    yield from w.compute(100)

            tids = []
            for _ in range(2):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)

        program = Program("stw", Binary("stw"), main, nthreads=2)
        engine = Engine(program, PthreadsRuntime())

        def callback(eng, stop_time):
            seen["stop_time"] = stop_time
            seen["states"] = sorted(
                t.state for t in eng.threads.values())

        # arm the stop after the engine starts: hook via tick
        engine.runtime.tick_cycles = 5_000
        engine._next_tick = 5_000
        fired = []

        def on_tick(eng, now):
            if not fired:
                fired.append(True)
                eng.request_stop_world(callback)

        engine.runtime.on_tick = on_tick
        engine.run()
        assert "stop_time" in seen
        assert all(s in ("parked", "blocked", "done")
                   for s in seen["states"])

    def test_conversion_moves_thread_to_new_process(self):
        def main(t):
            yield from t.compute(10)

        program = Program("conv", Binary("conv"), main, nthreads=1)
        engine = Engine(program, PthreadsRuntime())
        result = engine.run()
        thread = engine.threads[0]
        old_pid = thread.process.pid
        proc = engine.convert_thread_to_process(thread)
        assert thread.process is proc
        assert proc.pid != old_pid
        assert thread not in engine.processes[old_pid].threads
