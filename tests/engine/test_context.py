"""ThreadCtx API: region bracketing, volatile spins, bulk touches."""

import pytest

from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine, Program, RuntimeHooks
from repro.errors import HangError
from repro.isa import Binary, REGION_ASM, REGION_ATOMIC, RELAXED, SEQ_CST

from helpers import run_program


class RegionRecorder(PthreadsRuntime):
    """Captures the code-centric callbacks the engine fires."""

    def __init__(self):
        super().__init__()
        self.events = []

    def on_region_begin(self, engine, thread, kind, ordering):
        self.events.append(("begin", kind, ordering))
        return 0

    def on_region_end(self, engine, thread, kind):
        self.events.append(("end", kind))
        return 0


class TestRegionBracketing:
    def run_with_recorder(self, main):
        recorder = RegionRecorder()
        program = Program("r", Binary("r"), main, nthreads=1)
        Engine(program, recorder).run()
        return recorder.events

    def test_atomic_ops_emit_region_markers(self):
        def main(t):
            buf = yield from t.malloc(64)
            yield from t.atomic_add(buf, 1, 8)

        events = self.run_with_recorder(main)
        assert ("begin", REGION_ATOMIC, SEQ_CST) in events
        assert ("end", REGION_ATOMIC) in events

    def test_relaxed_ordering_propagates(self):
        def main(t):
            buf = yield from t.malloc(64)
            yield from t.atomic_add(buf, 1, 8, ordering=RELAXED)

        events = self.run_with_recorder(main)
        assert ("begin", REGION_ATOMIC, RELAXED) in events

    def test_asm_regions_explicit(self):
        def main(t):
            yield from t.asm_begin()
            yield from t.compute(10)
            yield from t.asm_end()

        events = self.run_with_recorder(main)
        assert events[0] == ("begin", REGION_ASM, SEQ_CST)
        assert events[-1] == ("end", REGION_ASM)

    def test_region_stack_tracked_on_thread(self):
        states = []

        def main(t):
            states.append(t._thread.in_asm_region)
            yield from t.asm_begin()
            states.append(t._thread.in_asm_region)
            yield from t.asm_end()
            states.append(t._thread.in_asm_region)

        run_program(main, nthreads=1)
        assert states == [False, True, False]


class TestVolatileSpin:
    def test_spin_sees_update(self):
        def main(t):
            flag = yield from t.malloc(64)
            yield from t.store(flag, 1, 4)

            def clearer(w):
                yield from w.compute(20_000)
                yield from w.volatile_store(flag, 0, 4)

            tid = yield from t.spawn(clearer)

            def waiter(w):
                value = yield from w.spin_while_equal(flag, 1, 4)
                assert value == 0

            tid2 = yield from t.spawn(waiter)
            yield from t.join(tid)
            yield from t.join(tid2)

        run_program(main, nthreads=2)

    def test_spin_budget_raises_hang(self):
        def main(t):
            flag = yield from t.malloc(64)
            yield from t.store(flag, 1, 4)
            yield from t.spin_while_equal(flag, 1, 4, max_spins=50)

        with pytest.raises(HangError):
            run_program(main, nthreads=1)


class TestBulkTouch:
    def test_bulk_faults_once_then_streams(self):
        costs = {}

        def main(t):
            buf = yield from t.malloc(1 << 20, align=4096)
            before = t.now_cycles()
            yield from t.bulk_touch(buf, 512 * 1024)
            costs["cold"] = t.now_cycles() - before
            before = t.now_cycles()
            yield from t.bulk_touch(buf, 512 * 1024)
            costs["warm"] = t.now_cycles() - before

        run_program(main, nthreads=1)
        assert costs["cold"] > costs["warm"] > 0

    def test_bulk_outside_mapping_fails(self):
        from repro.errors import SimulationError

        def main(t):
            yield from t.bulk_touch(0xDEAD0000, 4096)

        with pytest.raises(SimulationError):
            run_program(main, nthreads=1)


class TestStackAccess:
    def test_stack_addresses_usable(self):
        def main(t):
            base = t.stack_base()
            yield from t.store(base + 256, 99, 8)
            value = yield from t.load(base + 256, 8)
            assert value == 99

        run_program(main, nthreads=1)
