"""Program/WorkloadFeatures construction-time validation."""

import pytest

from repro.engine import Program
from repro.engine.program import SYNC_RATES, WorkloadFeatures
from repro.errors import InvalidProgramError, ReproError
from repro.isa import Binary


def _main(t):
    yield from t.compute(1)


class TestProgramValidation:
    def test_valid_program_constructs(self):
        program = Program("ok", Binary("ok"), _main, nthreads=4)
        assert program.nthreads == 4

    @pytest.mark.parametrize("nthreads", (0, -1, 2.0, "4"))
    def test_bad_nthreads_rejected(self, nthreads):
        with pytest.raises(InvalidProgramError):
            Program("bad", Binary("bad"), _main, nthreads=nthreads)

    def test_nonpositive_heap_rejected(self):
        with pytest.raises(InvalidProgramError):
            Program("bad", Binary("bad"), _main, nthreads=1,
                    heap_bytes=0)

    def test_invalid_program_error_is_repro_error(self):
        assert issubclass(InvalidProgramError, ReproError)


class TestWorkloadFeaturesValidation:
    @pytest.mark.parametrize("rate", SYNC_RATES)
    def test_known_sync_rates_accepted(self, rate):
        assert WorkloadFeatures(sync_rate=rate).sync_rate == rate

    def test_unknown_sync_rate_rejected(self):
        with pytest.raises(InvalidProgramError, match="sync_rate"):
            WorkloadFeatures(sync_rate="bursty")

    def test_nonpositive_footprint_rejected(self):
        with pytest.raises(InvalidProgramError):
            WorkloadFeatures(footprint_bytes=0)
