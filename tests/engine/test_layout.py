"""Memory-layout geography and region classification."""

from repro.engine import layout
from repro.sim.costs import PAGE_2M


class TestGeography:
    def test_regions_do_not_overlap(self):
        spans = [
            (layout.GLOBALS_BASE, layout.GLOBALS_BASE
             + layout.GLOBALS_SIZE),
            (layout.INTERNAL_BASE, layout.INTERNAL_BASE
             + layout.INTERNAL_SIZE),
            (layout.LIBC_BASE, layout.LIBC_BASE + layout.LIBC_SIZE),
            (layout.HEAP_BASE, layout.heap_end(1 << 30)),
            (layout.stack_base(0), layout.stack_base(0)
             + layout.STACK_SIZE),
        ]
        for i, (a_start, a_end) in enumerate(spans):
            for b_start, b_end in spans[i + 1:]:
                assert a_end <= b_start or b_end <= a_start

    def test_bases_are_huge_page_aligned(self):
        for base in (layout.GLOBALS_BASE, layout.HEAP_BASE):
            assert base % PAGE_2M == 0

    def test_stacks_spaced_and_disjoint(self):
        for tid in range(8):
            start = layout.stack_base(tid)
            end = start + layout.STACK_SIZE
            assert end <= layout.stack_base(tid + 1)


class TestRegionKinds:
    def test_classification(self):
        assert layout.region_kind("heap") == "heap"
        assert layout.region_kind("globals") == "globals"
        assert layout.region_kind("stack:7") == "stack"
        assert layout.region_kind("libc") == "lib"
        assert layout.region_kind("tmi-internal") == "internal"
        assert layout.region_kind("mystery") == "other"
