"""Differential pin: vector-on and vector-off runs are byte-identical.

The vector core is a host-speed optimization with a hard exactness
contract: simulated cycles, HITM counts, final-state digests, metrics
snapshots, and typed failures (``CycleBudgetError``,
``InvalidProgramError``) must not move by a single cycle.  These tests
run representative repair-suite cells and targeted failure shapes both
ways and compare everything observable.
"""

import pytest

from helpers import make_program
from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine
from repro.errors import CycleBudgetError, InvalidProgramError
from repro.eval.runner import run_workload
from repro.isa import Binary
from repro.isa import ops as O

#: Representative repair-suite cells: seq-heavy kernels (histogram,
#: lreg), AccessRun-heavy (stringmatch), repaired layouts where long
#: uncontended windows form (manual), a translate-hook system where
#: the engine gate must fall back wholesale (tmi-protect), and a
#: sync-heavy cell (spinlockpool).
CELLS = [
    ("histogramfs", "pthreads"),
    ("histogram", "manual"),
    ("lreg", "manual"),
    ("stringmatch", "pthreads"),
    ("leveldb-fs", "tmi-protect"),
    ("spinlockpool", "pthreads"),
]


def observable(outcome):
    result = outcome.result
    metrics = {key: value
               for key, value in outcome.metrics["counters"].items()
               if not key.startswith("vector.")}
    return {
        "status": outcome.status,
        "cycles": result.cycles if result else None,
        "hitm": ((result.hitm_loads, result.hitm_stores)
                 if result else None),
        "data_ops": result.data_ops if result else None,
        "sync_ops": result.sync_ops if result else None,
        "final_state": outcome.final_state,
        "counters": metrics,
        "gauges": outcome.metrics["gauges"],
    }


@pytest.mark.parametrize("name,system", CELLS)
def test_repair_cell_identical_both_ways(name, system):
    on = run_workload(name, system, scale=0.05, collect_state=True,
                      collect_metrics=True, vector=True)
    off = run_workload(name, system, scale=0.05, collect_state=True,
                       collect_metrics=True, vector=False)
    assert observable(on) == observable(off)


# ----------------------------------------------------------------------
# typed-error parity
# ----------------------------------------------------------------------
def _budget_program(shape):
    """Two workers hammering private lines through the batched ops the
    vector kernels accelerate; long enough that a small budget runs
    out mid-batch."""
    binary = Binary("budget")
    st = binary.store_site("st", 8)
    ld = binary.load_site("ld", 8)

    def main(t):
        block = yield from t.malloc(4096, align=64)

        def worker(w):
            base = block + (w.tid - 1) * 1024
            for _ in range(40):
                if shape == "run":
                    yield from w.store_run(base, 7, count=512,
                                           stride=0, width=8, site=st)
                else:
                    addrs = tuple(base + (i % 64) * 8
                                  for i in range(256))
                    yield from w.rmw_seq(addrs, 8, 1, 5, load_site=ld,
                                         store_site=st)

        tids = []
        for i in range(2):
            tid = yield from t.spawn(worker, f"w{i}")
            tids.append(tid)
        for tid in tids:
            yield from t.join(tid)

    return make_program(main, "budget", nthreads=2, binary=binary)


@pytest.mark.parametrize("shape", ["run", "seq"])
def test_budget_exhaustion_mid_batch_same_cycle(shape):
    """CycleBudgetError must fire at the identical simulated cycle
    whether the budget ran out inside a vector batch or on the serial
    path (regression: a kernel overrunning ``max_cycles`` would
    report a later exhaustion point)."""
    outcomes = {}
    for vector in (True, False):
        engine = Engine(_budget_program(shape), PthreadsRuntime(),
                        vector=vector, max_cycles=40_000)
        with pytest.raises(CycleBudgetError) as excinfo:
            engine.run()
        outcomes[vector] = (excinfo.value.args[:2],
                            engine.machine.now,
                            list(engine.machine.core_clock))
    assert outcomes[True] == outcomes[False]


@pytest.mark.parametrize("field", ["count", "width"])
def test_malformed_run_same_typed_error(field):
    """A malformed AccessRun raises InvalidProgramError before a
    single access executes, with or without the vector core."""
    binary = Binary("malformed")
    site = binary.store_site("st", 8)
    bad = O.AccessRun(site, 0x1000, count=0, stride=8, width=8,
                      is_write=True, value=1) if field == "count" \
        else O.AccessRun(site, 0x1000, count=4, stride=8, width=0,
                         is_write=True, value=1)

    def main(t):
        yield from t.compute(10)
        yield bad

    cycles = {}
    for vector in (True, False):
        engine = Engine(make_program(main, "malformed", nthreads=1,
                                     binary=binary),
                        PthreadsRuntime(), vector=vector)
        with pytest.raises(InvalidProgramError):
            engine.run()
        cycles[vector] = engine.machine.now
    assert cycles[True] == cycles[False]
