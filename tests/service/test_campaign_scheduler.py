"""Scheduler: ordering, backpressure, cache reuse, state, metrics.

Uses the grid harness' fake-runner seam (monkeypatching
``repro.eval.parallel._run_cell``) so campaigns execute instantly and
deterministically; real-workload end-to-end coverage lives in
``test_service_e2e.py``.
"""

import asyncio
import json
import os

import pytest

from repro.eval import parallel
from repro.eval.grid import checkpoint_path
from repro.service import (CAMPAIGN_FORMAT, COMPLETED, FAILED,
                           CampaignScheduler, CampaignSpec,
                           ResultStore, cell_digest)


def ok_runner(cell):
    return dict(cell, ran=True)


def flaky_runner(cell):
    """Fails every histogramfs cell; everything else succeeds."""
    if cell["name"] == "histogramfs":
        raise RuntimeError("injected failure")
    return dict(cell, ran=True)


@pytest.fixture
def ok_pool(monkeypatch):
    monkeypatch.setattr(parallel, "_run_cell", ok_runner)


def make_scheduler(tmp_path, **kwargs):
    kwargs.setdefault("jobs", 1)
    return CampaignScheduler(
        store=ResultStore(str(tmp_path / "store")),
        state_dir=str(tmp_path / "campaigns"),
        checkpoint_dir=str(tmp_path / "ckpt"), **kwargs)


def grid_spec(**overrides):
    kwargs = dict(workloads=("histogram", "histogramfs"),
                  systems=("pthreads",), scale=0.05)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def run_one(scheduler, job):
    async def _run():
        await scheduler.submit(job)
        await scheduler.run_pending()
    asyncio.run(_run())
    return job


class TestRunJob:
    def test_executes_caches_and_persists(self, ok_pool, tmp_path):
        scheduler = make_scheduler(tmp_path)
        job = scheduler.make_job("c1", grid_spec())
        run_one(scheduler, job)

        assert job.status == COMPLETED
        counts = job.counts()
        assert counts["total"] == 2 and counts["ok"] == 2
        assert counts["executed"] == 2 and counts["cache_hits"] == 0
        for cell in job.spec.cells():
            assert scheduler.store.get(cell_digest(cell)) is not None

        state = json.load(open(job.state_path))
        assert state["format"] == CAMPAIGN_FORMAT
        assert state["status"] == COMPLETED
        kinds = [e["kind"] for e in state["events"]["events"]]
        assert kinds[0] == "campaign_submitted"
        assert kinds[-1] == "campaign_done"
        assert "shard_done" in kinds

    def test_resubmission_is_pure_cache(self, ok_pool, tmp_path):
        scheduler = make_scheduler(tmp_path)
        run_one(scheduler, scheduler.make_job("c1", grid_spec()))
        second = run_one(scheduler,
                         scheduler.make_job("c2", grid_spec()))

        assert second.status == COMPLETED
        counts = second.counts()
        assert counts["cache_hits"] == counts["total"] == 2
        assert counts["executed"] == 0
        assert second.cache_hit_fraction() == 1.0

    def test_overlap_hits_cache_partially(self, ok_pool, tmp_path):
        scheduler = make_scheduler(tmp_path)
        run_one(scheduler, scheduler.make_job("c1", grid_spec()))
        wide = grid_spec(workloads=("histogram", "histogramfs",
                                    "lreg"))
        second = run_one(scheduler, scheduler.make_job("c2", wide))
        counts = second.counts()
        assert counts["cache_hits"] == 2 and counts["executed"] == 1

    def test_duplicate_axes_derive_one_cell(self, ok_pool, tmp_path):
        scheduler = make_scheduler(tmp_path)
        spec = grid_spec(workloads=("histogram", "histogram"))
        job = run_one(scheduler, scheduler.make_job("dup", spec))
        assert len(spec.cells()) == 2           # cross product
        assert job.counts()["total"] == 1       # one digest, run once

    def test_failed_cell_fails_campaign(self, tmp_path, monkeypatch):
        monkeypatch.setattr(parallel, "_run_cell", flaky_runner)
        scheduler = make_scheduler(tmp_path)
        job = run_one(scheduler, scheduler.make_job("f1", grid_spec()))

        assert job.status == FAILED
        counts = job.counts()
        assert counts["ok"] == 1 and counts["failed"] == 1
        ok_cell, bad_cell = job.spec.cells()
        assert scheduler.store.get(cell_digest(ok_cell)) is not None
        assert scheduler.store.get(cell_digest(bad_cell)) is None

    def test_resume_reruns_only_unfinished(self, tmp_path,
                                           monkeypatch):
        monkeypatch.setattr(parallel, "_run_cell", flaky_runner)
        scheduler = make_scheduler(tmp_path)
        first = run_one(scheduler,
                        scheduler.make_job("r1", grid_spec()))
        assert first.status == FAILED

        # service restarts with the failure's cause gone: the same
        # campaign id resumes from its state file, the previously-ok
        # cell is not re-executed
        monkeypatch.setattr(parallel, "_run_cell", ok_runner)
        second = run_one(scheduler,
                         scheduler.make_job("r1", grid_spec()))
        assert second.status == COMPLETED
        counts = second.counts()
        assert counts["ok"] == counts["total"] == 2
        # the ok cell kept its original executed record; only the
        # failed one went back to the pool
        statuses = {entry["cell"]["name"]: entry["source"]
                    for entry in second.cells.values()}
        assert statuses["histogram"] == "executed"

    def test_completed_campaign_drops_checkpoint(self, ok_pool,
                                                 tmp_path):
        scheduler = make_scheduler(tmp_path)
        job = run_one(scheduler, scheduler.make_job("ck", grid_spec()))
        assert job.status == COMPLETED
        path = checkpoint_path("campaign-ck",
                               out_dir=scheduler.checkpoint_dir)
        assert not os.path.exists(path)


class TestQueue:
    def test_priority_then_submission_order(self, ok_pool, tmp_path):
        scheduler = make_scheduler(tmp_path)

        async def _run():
            for name, priority in (("late", 5), ("urgent", 0),
                                   ("late2", 5)):
                spec = grid_spec(workloads=("histogram",),
                                 priority=priority)
                await scheduler.submit(scheduler.make_job(name, spec))
            return await scheduler.run_pending()

        done = asyncio.run(_run())
        assert [job.id for job in done] == ["urgent", "late", "late2"]

    def test_full_queue_applies_backpressure(self, ok_pool, tmp_path):
        """A full queue drains inline: submit and drain share one
        task, so a blocking put would deadlock — instead the second
        submit runs the queued job before its own enqueue proceeds."""
        scheduler = make_scheduler(tmp_path, queue_limit=1)

        async def _run():
            spec = grid_spec(workloads=("histogram",))
            first = scheduler.make_job("a", spec)
            await scheduler.submit(first)
            await asyncio.wait_for(
                scheduler.submit(scheduler.make_job("b", spec)),
                timeout=30.0)
            # submitting "b" paid by draining "a" to completion
            assert first.status == COMPLETED
            # the inline-drained job is still reported
            done = await scheduler.run_pending()
            assert [job.id for job in done] == ["a", "b"]

        asyncio.run(_run())
        counters = scheduler.metrics.snapshot()["counters"]
        assert counters["campaign.backpressure"] == 1

    def test_over_limit_submission_burst_never_hangs(self, ok_pool,
                                                     tmp_path):
        """Regression: >queue_limit submissions from one task used to
        block forever on the 65th put (no concurrent consumer)."""
        scheduler = make_scheduler(tmp_path, queue_limit=2)

        async def _run():
            spec = grid_spec(workloads=("histogram",))
            for index in range(5):
                await scheduler.submit(
                    scheduler.make_job(f"burst-{index}", spec))
            return await scheduler.run_pending()

        done = asyncio.run(asyncio.wait_for(_run(), timeout=60.0))
        # inline drains finished the early jobs, run_pending the rest
        # — and run_pending reports them all
        assert sorted(job.id for job in done) \
            == [f"burst-{index}" for index in range(5)]
        for index in range(5):
            state = json.load(open(os.path.join(
                str(tmp_path / "campaigns"), f"burst-{index}.json")))
            assert state["status"] == COMPLETED, f"burst-{index}"

    def test_scheduler_reusable_across_event_loops(self, ok_pool,
                                                   tmp_path):
        """One scheduler across several asyncio.run calls: the lazy
        queue re-binds to each fresh loop instead of hanging on a
        dead one."""
        scheduler = make_scheduler(tmp_path, queue_limit=1)
        for index in range(3):
            job = run_one(scheduler, scheduler.make_job(
                f"loop-{index}", grid_spec(workloads=("histogram",))))
            assert job.status == COMPLETED


class TestMetrics:
    def test_counters_track_the_campaign(self, ok_pool, tmp_path):
        scheduler = make_scheduler(tmp_path)
        run_one(scheduler, scheduler.make_job("m1", grid_spec()))
        run_one(scheduler, scheduler.make_job("m2", grid_spec()))

        snap = scheduler.metrics.snapshot()
        counters = snap["counters"]
        assert counters["campaign.cells_total"] == 4
        assert counters["campaign.cells_ok"] == 2
        assert counters["campaign.cache_hits"] == 2
        assert counters["campaign.executed"] == 2
        assert counters["campaign.jobs_completed"] == 2
        assert snap["gauges"]["campaign.queue_depth"] == 0
        assert snap["gauges"]["campaign.active"] == 0
        assert snap["histograms"]["campaign.shard_cells"]["count"] == 1
