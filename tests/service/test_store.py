"""Content-addressed result store: digests, puts, misses, atomicity."""

import json
import os

from repro.eval.parallel import CELL_FAILED, CELL_OK, CELL_TIMEOUT
from repro.service import (STORE_FORMAT, ResultStore, canonical_form,
                           cell_digest, payload_bytes, result_payload)

CELL = {"name": "histogram", "system": "pthreads", "scale": 0.05}


def store_in(tmp_path):
    return ResultStore(str(tmp_path / "store"))


class TestDigest:
    def test_dict_order_invariant(self):
        a = {"name": "h", "system": "p", "config": {"a": 1, "b": 2}}
        b = {"config": {"b": 2, "a": 1}, "system": "p", "name": "h"}
        assert cell_digest(a) == cell_digest(b)

    def test_value_sensitivity(self):
        assert cell_digest(CELL) != cell_digest(dict(CELL, scale=0.1))

    def test_engine_version_folded_in(self):
        assert '"engine"' in canonical_form(CELL)

    def test_tmiconfig_dataclass_normalizes_like_its_dict(self):
        from repro.core.config import TmiConfig
        from dataclasses import asdict
        config = TmiConfig(period=50)
        as_obj = cell_digest(dict(CELL, config=config))
        as_dict = cell_digest(dict(CELL, config=asdict(config)))
        assert as_obj == as_dict


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = store_in(tmp_path)
        summary = {"status": "ok", "cycles": 123}
        path = store.put(CELL, CELL_OK, summary)
        assert path and os.path.exists(path)
        payload = store.get(cell_digest(CELL))
        assert payload == result_payload(CELL_OK, summary)

    def test_miss_returns_none(self, tmp_path):
        store = store_in(tmp_path)
        assert store.get(cell_digest(CELL)) is None
        assert store.misses == 1 and store.hits == 0

    def test_only_ok_cells_cached(self, tmp_path):
        store = store_in(tmp_path)
        assert store.put(CELL, CELL_FAILED, None, "boom") is None
        assert store.put(CELL, CELL_TIMEOUT, None, "slow") is None
        assert store.get(cell_digest(CELL)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = store_in(tmp_path)
        path = store.put(CELL, CELL_OK, {"cycles": 1})
        open(path, "w").write('{"format": "repro-cell-result/1", tru')
        assert store.get(cell_digest(CELL)) is None
        # and a re-put repairs it
        store.put(CELL, CELL_OK, {"cycles": 1})
        assert store.get(cell_digest(CELL))["summary"] == {"cycles": 1}

    def test_wrong_format_tag_is_a_miss(self, tmp_path):
        store = store_in(tmp_path)
        path = store.put(CELL, CELL_OK, {"cycles": 1})
        entry = json.load(open(path))
        entry["format"] = "other/1"
        json.dump(entry, open(path, "w"))
        assert store.get(cell_digest(CELL)) is None

    def test_entry_carries_canonical_key(self, tmp_path):
        store = store_in(tmp_path)
        path = store.put(CELL, CELL_OK, {"cycles": 1})
        entry = json.load(open(path))
        assert entry["format"] == STORE_FORMAT
        assert entry["digest"] == cell_digest(CELL)
        assert entry["key"] == json.loads(canonical_form(CELL))

    def test_sharded_layout_and_stats(self, tmp_path):
        store = store_in(tmp_path)
        store.put(CELL, CELL_OK, {})
        store.put(dict(CELL, scale=0.1), CELL_OK, {})
        digest = cell_digest(CELL)
        assert store.path(digest).startswith(
            os.path.join(store.root, digest[:2]))
        assert store.stats()["entries"] == 2

    def test_no_tmp_droppings(self, tmp_path):
        store = store_in(tmp_path)
        store.put(CELL, CELL_OK, {})
        leftovers = [f for _, _, files in os.walk(store.root)
                     for f in files if f.endswith(".tmp")]
        assert leftovers == []


class TestIntegrity:
    def test_tampered_payload_is_evicted(self, tmp_path):
        store = store_in(tmp_path)
        path = store.put(CELL, CELL_OK, {"cycles": 123})
        entry = json.load(open(path))
        entry["result"]["summary"]["cycles"] = 999  # bit-rot / edit
        json.dump(entry, open(path, "w"))

        assert store.get(cell_digest(CELL)) is None
        assert store.evictions == 1 and store.misses == 1
        assert not os.path.exists(path)  # evicted, not just skipped
        # and a re-put repairs it
        store.put(CELL, CELL_OK, {"cycles": 123})
        payload = store.get(cell_digest(CELL))
        assert payload["summary"] == {"cycles": 123}

    def test_entry_planted_under_wrong_name_is_evicted(self, tmp_path):
        store = store_in(tmp_path)
        path = store.put(CELL, CELL_OK, {"cycles": 1})
        other = cell_digest(dict(CELL, scale=0.1))
        wrong = store.path(other)
        os.makedirs(os.path.dirname(wrong), exist_ok=True)
        open(wrong, "w").write(open(path).read())

        # recorded digest disagrees with the requested one
        assert store.get(other) is None
        assert store.evictions == 1
        assert not os.path.exists(wrong)
        # the honest entry still serves
        assert store.get(cell_digest(CELL)) is not None

    def test_pre_checksum_entry_is_evicted(self, tmp_path):
        store = store_in(tmp_path)
        path = store.put(CELL, CELL_OK, {"cycles": 1})
        entry = json.load(open(path))
        del entry["payload_sha256"]
        json.dump(entry, open(path, "w"))
        assert store.get(cell_digest(CELL)) is None
        assert store.evictions == 1

    def test_wrong_format_is_a_miss_but_not_evicted(self, tmp_path):
        # a foreign file is not ours to delete; only correctly-tagged
        # entries that fail their own integrity checks get evicted
        store = store_in(tmp_path)
        path = store.put(CELL, CELL_OK, {"cycles": 1})
        entry = json.load(open(path))
        entry["format"] = "other/1"
        json.dump(entry, open(path, "w"))
        assert store.get(cell_digest(CELL)) is None
        assert store.evictions == 0
        assert os.path.exists(path)

    def test_stats_reports_evictions(self, tmp_path):
        store = store_in(tmp_path)
        assert store.stats()["evictions"] == 0
        path = store.put(CELL, CELL_OK, {})
        open(path, "a").write(" ")  # payload fine, but rewrite it
        entry = json.load(open(path))
        entry["payload_sha256"] = "0" * 64
        json.dump(entry, open(path, "w"))
        store.get(cell_digest(CELL))
        assert store.stats()["evictions"] == 1


class TestPayloadBytes:
    def test_canonical_and_order_free(self):
        a = payload_bytes({"status": "ok", "summary": {"x": 1}})
        b = payload_bytes({"summary": {"x": 1}, "status": "ok"})
        assert a == b and b"\n" not in a
