"""Arrival processes: registry, determinism, distribution shape."""

import itertools

import pytest

from repro.errors import CampaignSpecError
from repro.service import (ARRIVAL_PROCESSES, Bursty, ClosedLoop,
                           Poisson, make_arrival)


def take(process, n):
    return list(itertools.islice(process.gaps(), n))


class TestRegistry:
    def test_builtin_processes_registered(self):
        assert set(ARRIVAL_PROCESSES) == {"closed", "poisson",
                                          "bursty"}

    def test_make_arrival_dispatches(self):
        arrival = make_arrival({"process": "poisson", "rate": 2.0,
                                "seed": 7})
        assert isinstance(arrival, Poisson)
        assert arrival.rate == 2.0 and arrival.seed == 7

    def test_unknown_process_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown arrival"):
            make_arrival({"process": "uniform"})

    def test_missing_process_key_rejected(self):
        with pytest.raises(CampaignSpecError, match="'process'"):
            make_arrival({"rate": 1.0})

    def test_unknown_kwargs_rejected(self):
        with pytest.raises(CampaignSpecError, match="malformed"):
            make_arrival({"process": "poisson", "tempo": 9})


class TestDeterminism:
    def test_same_seed_same_stream(self):
        assert take(Poisson(4.0, seed=3), 50) \
            == take(Poisson(4.0, seed=3), 50)
        assert take(Bursty(4.0, burst=3, seed=3), 50) \
            == take(Bursty(4.0, burst=3, seed=3), 50)

    def test_different_seeds_differ(self):
        assert take(Poisson(4.0, seed=1), 20) \
            != take(Poisson(4.0, seed=2), 20)


class TestShape:
    def test_poisson_mean_tracks_rate(self):
        gaps = take(Poisson(rate=4.0, seed=0), 4000)
        mean = sum(gaps) / len(gaps)
        assert 0.2 < mean < 0.3          # 1/rate = 0.25, seeded draw

    def test_bursty_zero_gaps_within_burst(self):
        gaps = take(Bursty(rate=4.0, burst=4, seed=0), 16)
        # pattern: gap, 0, 0, 0, gap, 0, 0, 0, ...
        assert all(gaps[i] == 0.0 for i in range(16) if i % 4 != 0)
        assert all(gaps[i] > 0.0 for i in range(0, 16, 4))

    def test_bursty_preserves_average_rate(self):
        gaps = take(Bursty(rate=4.0, burst=4, seed=1), 4000)
        mean = sum(gaps) / len(gaps)
        assert 0.2 < mean < 0.3          # same offered load as Poisson

    def test_closed_loop_constant_think(self):
        assert take(ClosedLoop(clients=2, think=0.5), 5) == [0.5] * 5
        assert ClosedLoop().closed and not Poisson().closed

    def test_times_accumulate(self):
        times = Poisson(rate=2.0, seed=5).times(10)
        assert times == sorted(times) and len(times) == 10

    def test_bad_parameters_rejected(self):
        with pytest.raises(CampaignSpecError):
            Poisson(rate=0)
        with pytest.raises(CampaignSpecError):
            Bursty(rate=1.0, burst=0)
        with pytest.raises(CampaignSpecError):
            ClosedLoop(clients=0)
        with pytest.raises(CampaignSpecError):
            ClosedLoop(think=-1)
