"""Resilience layer: retry budgets, quarantine, quotas, supervision.

Uses the grid harness' fake-runner seam (monkeypatching
``repro.eval.parallel._run_cell``) like the scheduler tests, so
attempts, backoff rounds, and quarantine decisions are deterministic
and instant.  The restart tests at the bottom are fork-gated: they
SIGKILL a forked service mid-campaign and prove the supervision state
survives.
"""

import asyncio
import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.errors import ReproError, ServiceTimeoutError
from repro.eval import parallel
from repro.eval.parallel import CELL_OK
from repro.service import (CELL_QUARANTINED, COMPLETED, FAILED,
                           QUARANTINE_FORMAT, SERVICE_STATE_FORMAT,
                           SOURCE_QUARANTINE, CampaignScheduler,
                           CampaignService, CampaignSpec,
                           ResiliencePolicy, ResilienceSupervisor,
                           ResultStore, ServiceClient, TenantQueues,
                           cell_digest)

_MAIN_PID = os.getpid()


def ok_runner(cell):
    return dict(cell, ran=True)


def poison_runner(cell):
    """Fails every histogramfs cell, every attempt."""
    if cell["name"] == "histogramfs":
        raise RuntimeError("injected poison")
    return dict(cell, ran=True)


def transient_runner(failures=1):
    """Fails the first ``failures`` histogramfs attempts, then heals."""
    calls = {}

    def _run(cell):
        if cell["name"] == "histogramfs":
            calls["n"] = calls.get("n", 0) + 1
            if calls["n"] <= failures:
                raise RuntimeError("transient")
        return dict(cell, ran=True)
    return _run


def make_scheduler(tmp_path, policy=None, root="svc", **kwargs):
    kwargs.setdefault("jobs", 1)
    base = str(tmp_path / root)
    sup = ResilienceSupervisor(base, policy=policy)
    scheduler = CampaignScheduler(
        store=ResultStore(os.path.join(base, "store")),
        state_dir=os.path.join(base, "campaigns"),
        checkpoint_dir=os.path.join(base, "ckpt"),
        resilience=sup, **kwargs)
    return scheduler, sup


def grid_spec(**overrides):
    kwargs = dict(workloads=("histogram", "histogramfs"),
                  systems=("pthreads",), scale=0.05)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def run_one(scheduler, job):
    async def _run():
        await scheduler.submit(job)
        await scheduler.run_pending()
    asyncio.run(_run())
    return job


def poison_digest(spec=None):
    cells = (spec or grid_spec()).cells()
    return next(cell_digest(c) for c in cells
                if c["name"] == "histogramfs")


def events_of(job, kind):
    return [e for e in job.log.events if e["kind"] == kind]


class TestRetryBudget:
    def test_budget_exhaustion_quarantines_in_order(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr(parallel, "_run_cell", poison_runner)
        policy = ResiliencePolicy(max_attempts=3)
        scheduler, sup = make_scheduler(tmp_path, policy=policy)
        job = run_one(scheduler, scheduler.make_job("b1", grid_spec()))

        # the quarantined cell is held out, not a campaign failure
        assert job.status == COMPLETED
        digest = poison_digest()
        by_name = {e["cell"]["name"]: e for e in job.cells.values()}
        assert by_name["histogram"]["status"] == CELL_OK
        assert by_name["histogramfs"]["status"] == CELL_QUARANTINED
        # a quarantined cell never reaches the cache
        assert scheduler.store.get(digest) is None

        # attempts are logged 1..max_attempts, in order
        attempts = [e["attempt"] for e in events_of(job, "cell_attempt")
                    if e["digest"] == digest[:12]]
        assert attempts == [1, 2, 3]

        # each retry's due round is the previous round plus the policy's
        # backoff plus the seeded jitter — exactly reproducible
        retries = [e for e in events_of(job, "cell_retry")]
        assert len(retries) == 2
        due1 = policy.backoff_rounds(1) + policy.jitter("b1", digest, 1)
        due2 = due1 + policy.backoff_rounds(2) \
            + policy.jitter("b1", digest, 2)
        assert [e["due_round"] for e in retries] == [due1, due2]

        entry = sup.quarantine.get(digest)
        assert entry["format"] == QUARANTINE_FORMAT
        assert entry["attempts"] == 3
        assert entry["reason"] == "retry budget exhausted (3 attempts)"
        assert entry["cell"]["name"] == "histogramfs"

        counters = scheduler.metrics.snapshot()["counters"]
        assert counters["service.retry"] == 2
        assert counters["service.quarantined"] == 1

    def test_transient_failure_retries_to_success(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setattr(parallel, "_run_cell", transient_runner(1))
        scheduler, sup = make_scheduler(tmp_path)
        job = run_one(scheduler, scheduler.make_job("t1", grid_spec()))

        assert job.status == COMPLETED
        assert job.counts()["ok"] == job.counts()["total"] == 2
        assert sup.quarantine.digests() == []
        assert scheduler.store.get(poison_digest()) is not None
        # the recovery went through a parked retry round
        assert events_of(job, "campaign_retry_round")
        counters = scheduler.metrics.snapshot()["counters"]
        assert counters["service.retry"] == 1
        assert "service.quarantined" not in counters

    def test_campaign_retry_cap_fails_the_campaign(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.setattr(parallel, "_run_cell", poison_runner)
        policy = ResiliencePolicy(max_attempts=50,
                                  max_campaign_retries=2)
        scheduler, sup = make_scheduler(tmp_path, policy=policy)
        job = run_one(scheduler, scheduler.make_job("c1", grid_spec()))

        # budget not exhausted per cell, but the campaign cap is spent
        assert job.status == FAILED
        assert events_of(job, "campaign_retry_cap")
        assert sup.quarantine.digests() == []


class TestQuarantinePersistence:
    def quarantine_one(self, tmp_path, monkeypatch, campaign="q1"):
        monkeypatch.setattr(parallel, "_run_cell", poison_runner)
        policy = ResiliencePolicy(max_attempts=2)
        scheduler, sup = make_scheduler(tmp_path, policy=policy)
        job = run_one(scheduler,
                      scheduler.make_job(campaign, grid_spec()))
        assert job.status == COMPLETED
        digest = poison_digest()
        assert sup.quarantine.contains(digest)
        return digest, policy

    def test_quarantine_survives_restart_and_skips(self, tmp_path,
                                                   monkeypatch):
        digest, policy = self.quarantine_one(tmp_path, monkeypatch)

        calls = []

        def recording(cell):
            calls.append(cell["name"])
            return dict(cell, ran=True)
        monkeypatch.setattr(parallel, "_run_cell", recording)

        # a brand-new supervisor on the same root sees the quarantine
        # and the persisted attempt counts
        scheduler, sup = make_scheduler(tmp_path, policy=policy)
        assert sup.is_quarantined(digest)
        assert sup.attempt_count("q1", digest) == 2

        job = run_one(scheduler, scheduler.make_job("q2", grid_spec()))
        assert job.status == COMPLETED
        assert calls == []  # poison skipped, healthy cell cached
        entry = job.cells[digest]
        assert entry["status"] == CELL_QUARANTINED
        assert entry["source"] == SOURCE_QUARANTINE
        counters = scheduler.metrics.snapshot()["counters"]
        assert counters["service.quarantine.skipped"] == 1
        counts = job.counts()
        assert counts[CELL_QUARANTINED] == 1
        assert counts["cache_hits"] == 1 and counts["executed"] == 0

    def test_released_cell_reexecutes(self, tmp_path, monkeypatch):
        digest, policy = self.quarantine_one(tmp_path, monkeypatch)

        scheduler, sup = make_scheduler(tmp_path, policy=policy)
        assert sup.quarantine.release(digest)
        assert not sup.quarantine.release(digest)  # idempotent: gone
        monkeypatch.setattr(parallel, "_run_cell", ok_runner)

        job = run_one(scheduler, scheduler.make_job("q1", grid_spec()))
        assert job.status == COMPLETED
        assert job.counts()["ok"] == 2
        assert scheduler.store.get(digest) is not None
        assert sup.quarantine.digests() == []

    def test_released_still_poison_requarantines_at_once(
            self, tmp_path, monkeypatch):
        digest, policy = self.quarantine_one(tmp_path, monkeypatch)

        scheduler, sup = make_scheduler(tmp_path, policy=policy)
        sup.quarantine.release(digest)
        retries_before = scheduler.metrics.snapshot()["counters"] \
            .get("service.retry", 0)

        # still poisoned: the persisted attempt count is already at the
        # budget, so the first new failure quarantines without another
        # backoff cycle
        job = run_one(scheduler, scheduler.make_job("q1", grid_spec()))
        assert job.status == COMPLETED
        assert sup.quarantine.contains(digest)
        assert sup.quarantine.get(digest)["attempts"] == 3
        counters = scheduler.metrics.snapshot()["counters"]
        assert counters.get("service.retry", 0) == retries_before


class TestSupervisionState:
    def test_state_artifact_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(parallel, "_run_cell", poison_runner)
        policy = ResiliencePolicy(max_attempts=2)
        scheduler, sup = make_scheduler(tmp_path, policy=policy)
        spec = grid_spec(tenant="acme")
        run_one(scheduler, scheduler.make_job("s1", spec))

        digest = poison_digest()
        state = json.load(open(sup.state_path))
        assert state["format"] == SERVICE_STATE_FORMAT
        assert state["quarantined"] == [digest]
        assert state["campaigns"]["s1"]["attempts"] == {digest: 2}
        assert state["tenants"]["acme"]["completed"] == 1

        fresh = ResilienceSupervisor(sup.root, policy=policy)
        assert fresh.attempt_count("s1", digest) == 2
        assert fresh.tenant_stats["acme"]["completed"] == 1

    def test_byte_identical_state_for_identical_histories(
            self, tmp_path, monkeypatch):
        monkeypatch.setattr(parallel, "_run_cell", poison_runner)
        paths = []
        for root in ("one", "two"):
            policy = ResiliencePolicy(max_attempts=2)
            scheduler, sup = make_scheduler(tmp_path, policy=policy,
                                            root=root)
            job = run_one(scheduler,
                          scheduler.make_job("same", grid_spec()))
            paths.append((sup.state_path, job.state_path))
        (state_a, campaign_a), (state_b, campaign_b) = paths
        assert open(state_a, "rb").read() == open(state_b, "rb").read()
        assert open(campaign_a, "rb").read() \
            == open(campaign_b, "rb").read()

    def test_corrupt_state_files_mean_fresh_start(self, tmp_path):
        base = str(tmp_path / "svc")
        sup = ResilienceSupervisor(base)
        sup.attempts["c"] = {"d": 1}
        sup.save_state()
        open(sup.state_path, "w").write('{"format": "repro-serv')
        open(sup.health_path, "w").write("not json")
        fresh = ResilienceSupervisor(base)
        assert fresh.attempts == {}
        assert fresh.round == 0


class TestTenantFairness:
    def test_weighted_round_robin_interleaves(self):
        policy = ResiliencePolicy(tenant_weights={"acme": 2,
                                                  "bolt": 1})
        queues = TenantQueues(policy)
        for seq, name in enumerate(("a1", "a2", "a3", "a4")):
            queues.push("acme", (0, seq, name))
        for seq, name in enumerate(("b1", "b2")):
            queues.push("bolt", (0, seq, name))
        order = [queues.pop()[2] for _ in range(6)]
        # acme's double weight shows up as 2:1 interleaving until bolt
        # drains, then acme finishes alone
        assert order == ["a1", "b1", "a2", "b2", "a3", "a4"]
        assert queues.pop() is None

    def test_priority_holds_within_a_tenant(self):
        queues = TenantQueues(ResiliencePolicy())
        queues.push("acme", (5, 0, "late"))
        queues.push("acme", (0, 1, "urgent"))
        assert queues.pop()[2] == "urgent"

    def test_prefer_forces_the_flooding_tenant(self):
        queues = TenantQueues(ResiliencePolicy())
        queues.push("acme", (0, 0, "a1"))
        queues.push("bolt", (0, 1, "b1"))
        assert queues.pop(prefer="bolt")[2] == "b1"

    def test_quota_backpressure_drains_own_queue(self, tmp_path,
                                                 monkeypatch):
        monkeypatch.setattr(parallel, "_run_cell", ok_runner)
        policy = ResiliencePolicy(tenant_max_queued=1)
        scheduler, sup = make_scheduler(tmp_path, policy=policy)
        spec = grid_spec(workloads=("histogram",), tenant="noisy")

        async def _run():
            first = scheduler.make_job("n1", spec)
            await scheduler.submit(first)
            await scheduler.submit(scheduler.make_job("n2", spec))
            # the second submit paid its quota by draining the first
            assert first.status == COMPLETED
            done = await scheduler.run_pending()
            assert sorted(j.id for j in done) == ["n1", "n2"]

        asyncio.run(_run())
        counters = scheduler.metrics.snapshot()["counters"]
        assert counters[
            "service.tenant.backpressure{tenant=noisy}"] == 1
        assert counters[
            "service.tenant.submitted{tenant=noisy}"] == 2
        assert counters["campaign.backpressure"] == 1


class TestWatchdog:
    def test_no_history_passes_the_default_through(self):
        sup = ResilienceSupervisor("unused-root")
        assert sup.shard_timeout(["d1"], 30.0) == (30.0, False)

    def test_partial_history_never_engages(self):
        sup = ResilienceSupervisor("unused-root")
        sup.record_success("d1", 0.2)
        assert sup.shard_timeout(["d1", "d2"], None) == (None, False)

    def test_full_history_bounds_an_unbounded_shard(self):
        policy = ResiliencePolicy(hung_multiplier=4.0,
                                  min_watchdog_seconds=0.5)
        sup = ResilienceSupervisor("unused-root", policy=policy)
        sup.record_success("d1", 2.0)
        sup.record_success("d2", 1.0)
        assert sup.shard_timeout(["d1", "d2"], None) == (8.0, True)

    def test_tight_default_wins_over_the_bound(self):
        sup = ResilienceSupervisor("unused-root")
        sup.record_success("d1", 2.0)
        assert sup.shard_timeout(["d1"], 5.0) == (5.0, False)

    def test_history_keeps_the_max_and_floors_the_bound(self):
        sup = ResilienceSupervisor("unused-root")
        sup.record_success("d1", 0.01)
        sup.record_success("d1", 0.002)  # max() keeps the first
        bound, engaged = sup.shard_timeout(["d1"], None)
        assert engaged and bound == sup.policy.min_watchdog_seconds


class TestClientWait:
    def test_timeout_is_typed_and_names_the_campaign(self, tmp_path):
        client = ServiceClient(root=str(tmp_path / "svc"))
        with pytest.raises(ServiceTimeoutError) as excinfo:
            client.wait("ghost-1", timeout=0.05, poll=0.01)
        err = excinfo.value
        assert isinstance(err, ReproError)
        assert isinstance(err, TimeoutError)
        assert err.campaign_id == "ghost-1"
        assert err.last_status == "unknown"
        assert "ghost-1" in str(err) and "unknown" in str(err)

    def test_timeout_reports_last_observed_status(self, tmp_path):
        service = CampaignService(root=str(tmp_path / "svc"))
        job = service.scheduler.make_job("stuck-1", grid_spec())
        job.write_state()  # pending, and nothing will drain it
        client = ServiceClient(root=service.root)
        with pytest.raises(ServiceTimeoutError) as excinfo:
            client.wait("stuck-1", timeout=0.05, poll=0.01)
        assert excinfo.value.last_status == "pending"


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="kill test needs fork-inherited monkeypatching")
class TestKillRestart:
    @staticmethod
    def _chaos_cell(cell):
        if cell["name"] == "histogramfs":
            raise RuntimeError("persistent poison")
        if cell["name"] == "lreg" and os.getpid() != _MAIN_PID:
            time.sleep(30)  # holds the forked child mid-campaign
        return dict(cell, ran=True)

    def test_sigkilled_service_resumes_with_quarantine(
            self, tmp_path, monkeypatch):
        """SIGKILL mid-campaign: quarantine + attempts survive."""
        monkeypatch.setattr(parallel, "_run_cell", self._chaos_cell)
        root = str(tmp_path / "svc")
        policy = ResiliencePolicy(max_attempts=1, jitter_rounds=0)
        spec = grid_spec(workloads=("histogram", "histogramfs",
                                    "lreg"))
        digest = poison_digest(spec)

        def child():
            service = CampaignService(root=root, jobs=1,
                                      resilience=policy)
            service.run_spec(spec, campaign_id="kill-1")

        proc = multiprocessing.Process(target=child)
        proc.start()
        quarantine_path = os.path.join(root, "quarantine",
                                       f"{digest}.json")
        deadline = time.monotonic() + 30
        while not os.path.exists(quarantine_path):
            assert time.monotonic() < deadline, "no quarantine entry"
            assert proc.is_alive(), "service died before quarantine"
            time.sleep(0.02)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10)

        # restart on the same root: the campaign is non-terminal, the
        # quarantine and attempt counts come back from disk, and a
        # graceful drain finishes everything that isn't held
        revived = CampaignService(root=root, jobs=1,
                                  resilience=policy)
        sup = revived.resilience
        assert sup.is_quarantined(digest)
        assert sup.attempt_count("kill-1", digest) == 1
        assert "kill-1" in revived.incomplete_campaigns()

        done = asyncio.run(revived.serve(drain=True))
        assert "kill-1" in [j.id for j in done]
        state = revived.status("kill-1")
        assert state["status"] == COMPLETED
        by_name = {e["cell"]["name"]: e
                   for e in state["cells"].values()}
        assert by_name["histogram"]["status"] == CELL_OK
        assert by_name["lreg"]["status"] == CELL_OK
        assert by_name["histogramfs"]["status"] == CELL_QUARANTINED
        assert sup.quarantine.get(digest)["attempts"] == 1
