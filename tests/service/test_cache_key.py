"""Hypothesis properties of the content-addressed cache key.

The digest must be a pure function of the cell's *value*: invariant to
config dict key order and to host-side execution knobs (``REPRO_JOBS``),
and injective over distinct (workload, system, config, seed) tuples at
the canonical-form level — a serialization collision would silently
serve one cell's cycles as another's.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service import canonical_form, cell_digest

# first draws pay hypothesis' strategy warm-up; irrelevant to the
# properties under test, so don't let the too_slow health check flake
_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

#: JSON-representable TMI config override values.  The domains are
#: type-disjoint under Python ``==`` (ints start at 2, so no boolean
#: aliasing): dict equality of two generated cells then implies
#: identical canonical JSON, which is what the injectivity property
#: quantifies over.
_VALUES = st.one_of(st.integers(2, 2**31), st.booleans(),
                    st.text(max_size=12))

_CONFIGS = st.dictionaries(
    st.sampled_from(["period", "detect_interval_cycles",
                     "repair_threshold_events", "huge_pages",
                     "targeted", "code_centric", "max_repair_pages"]),
    _VALUES, max_size=5)

_CELLS = st.fixed_dictionaries(
    {"name": st.sampled_from(["histogram", "histogramfs", "lreg"]),
     "system": st.sampled_from(["pthreads", "tmi-protect", "laser"]),
     "scale": st.sampled_from([0.05, 0.1, 1.0]),
     "config": _CONFIGS,
     "seed": st.one_of(st.none(), st.integers(0, 2**16))})


@_SETTINGS
@given(cell=_CELLS, shuffle=st.randoms(use_true_random=False))
def test_config_key_order_never_changes_the_digest(cell, shuffle):
    keys = list(cell["config"])
    shuffle.shuffle(keys)
    reordered = dict(cell, config={k: cell["config"][k] for k in keys})
    assert cell_digest(cell) == cell_digest(reordered)
    assert canonical_form(cell) == canonical_form(reordered)


@settings(parent=_SETTINGS,
          suppress_health_check=[HealthCheck.function_scoped_fixture,
                                 HealthCheck.too_slow])
@given(cell=_CELLS, jobs=st.sampled_from(["1", "4", "16", ""]))
def test_repro_jobs_never_changes_the_digest(cell, jobs,
                                             monkeypatch):
    baseline = cell_digest(cell)
    monkeypatch.setenv("REPRO_JOBS", jobs)
    assert cell_digest(cell) == baseline
    monkeypatch.delenv("REPRO_JOBS")
    assert cell_digest(cell) == baseline


@_SETTINGS
@given(a=_CELLS, b=_CELLS)
def test_distinct_cells_never_collide_on_canonical_form(a, b):
    if a == b:
        assert canonical_form(a) == canonical_form(b)
    else:
        assert canonical_form(a) != canonical_form(b)


@_SETTINGS
@given(cell=_CELLS)
def test_digest_is_stable_across_processes(cell):
    # sha256 of the canonical form, no PYTHONHASHSEED contamination
    import hashlib
    want = hashlib.sha256(canonical_form(cell).encode()).hexdigest()
    assert cell_digest(cell) == want


def test_engine_version_invalidates_the_cache(monkeypatch):
    from repro.service import store as store_mod
    cell = {"name": "histogram", "system": "pthreads"}
    before = cell_digest(cell)
    monkeypatch.setattr(store_mod, "ENGINE_VERSION", "999.0.0")
    assert cell_digest(cell) != before
