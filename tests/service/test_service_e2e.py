"""End-to-end service: real workloads, overlap caching, byte-identity.

Satellite 1 plus the PR acceptance criterion: two overlapping
campaigns run through the real simulator (tiny scales, serial pool);
the second campaign's shared cells must all be cache hits, cached
results must be byte-identical to a direct
:func:`repro.eval.parallel.run_cells_recorded` run of the same cells,
and resubmitting an identical campaign must complete with 100% cache
hits and zero re-executed cells.
"""

import asyncio
import json
import os

import pytest

from repro.eval.grid import summarize_outcome
from repro.eval.parallel import run_cells_recorded
from repro.service import (COMPLETED, CampaignService, CampaignSpec,
                           ServiceClient, cell_digest, payload_bytes,
                           result_payload)

SCALE = 0.05  # ~0.2 s per cell: e2e stays affordable with jobs=1


def narrow_spec(**overrides):
    kwargs = dict(workloads=("histogram", "histogramfs"),
                  systems=("pthreads",), scale=SCALE, name="narrow")
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def wide_spec():
    # same two workloads, one extra system: 2 shared cells, 2 fresh
    return narrow_spec(systems=("pthreads", "tmi-protect"),
                       name="wide")


@pytest.fixture(scope="module")
def root(tmp_path_factory):
    return str(tmp_path_factory.mktemp("service"))


@pytest.fixture(scope="module")
def service(root):
    return CampaignService(root=root, jobs=1)


@pytest.fixture(scope="module")
def primed(service):
    """The first campaign: everything executes, nothing is cached."""
    return service.run_spec(narrow_spec(), campaign_id="narrow-1")


class TestOverlap:
    def test_first_campaign_executes_everything(self, primed):
        assert primed.status == COMPLETED
        counts = primed.counts()
        assert counts["executed"] == counts["total"] == 2
        assert counts["cache_hits"] == 0

    def test_shared_cells_all_cache_hits(self, service, primed):
        job = service.run_spec(wide_spec(), campaign_id="wide-1")
        assert job.status == COMPLETED
        shared = {cell_digest(c) for c in narrow_spec().cells()}
        for digest, entry in job.cells.items():
            want = "cache" if digest in shared else "executed"
            assert entry["source"] == want, entry
        assert job.counts()["cache_hits"] == len(shared) == 2

    def test_cached_results_byte_identical_to_direct_run(
            self, service, primed):
        """The cache must be invisible: byte-for-byte the direct grid.

        Every cached payload is compared against a fresh
        ``run_cells_recorded`` of the same cell — same canonical
        bytes, or the cache is serving subtly different science.
        """
        cells = narrow_spec().cells()
        records = run_cells_recorded(cells, jobs=1)
        for cell, record in zip(cells, records):
            assert record.status == "ok"
            fresh = result_payload(
                record.status, summarize_outcome(record.outcome),
                record.error)
            cached = service.store.get(cell_digest(cell))
            assert payload_bytes(cached) == payload_bytes(fresh)

    def test_identical_resubmission_is_all_hits(self, service,
                                                primed):
        job = service.run_spec(narrow_spec(), campaign_id="narrow-2")
        assert job.status == COMPLETED
        counts = job.counts()
        assert counts["cache_hits"] == counts["total"] == 2
        assert counts["executed"] == 0
        assert job.cache_hit_fraction() == 1.0


class TestClientProtocol:
    def test_submit_serve_status_roundtrip(self, service, root,
                                           primed):
        client = ServiceClient(root)
        campaign_id = client.submit(narrow_spec(), "via-client")
        assert campaign_id == "via-client"
        spooled = os.path.join(service.inbox_dir, "via-client.json")
        assert os.path.exists(spooled)
        assert client.status("via-client") is None  # not served yet

        done = asyncio.run(service.serve(once=True))
        assert "via-client" in [job.id for job in done]
        assert os.path.exists(spooled + ".accepted")

        state = client.status("via-client")
        assert state["status"] == COMPLETED
        assert state["cache_hit_fraction"] == 1.0  # primed store
        assert client.wait("via-client", timeout=1.0)["id"] \
            == "via-client"
        assert "via-client" in client.campaign_ids()

    def test_malformed_spec_rejected_not_crashed(self, service,
                                                 root):
        bad = os.path.join(service.inbox_dir, "garbage.json")
        open(bad, "w").write("{not json")
        done = asyncio.run(service.serve(once=True))
        assert "garbage" not in [job.id for job in done]
        assert os.path.exists(bad + ".rejected")

    def test_results_carry_cached_payloads(self, service, primed):
        rows = service.results("narrow-1")
        assert len(rows) == 2
        for row in rows:
            assert row["status"] == "ok"
            assert row["result"]["summary"]["status"] == "ok"
            assert row["digest"] == cell_digest(row["cell"])


class TestRestartResume:
    def test_interrupted_campaign_resumes_on_new_service(self, root):
        """A campaign stuck mid-run survives a service restart."""
        first = CampaignService(root=root, jobs=1)
        job = first.scheduler.make_job("stuck-1", narrow_spec())
        job.write_state()  # pending, never drained: simulated crash
        assert "stuck-1" in first.incomplete_campaigns()

        revived = CampaignService(root=root, jobs=1)
        done = asyncio.run(revived.serve(once=True))
        assert "stuck-1" in [j.id for j in done]
        state = revived.status("stuck-1")
        assert state["status"] == COMPLETED
        # the primed store makes the revival free
        assert state["counts"]["executed"] == 0

    def test_campaign_state_survives_restart(self, root):
        fresh = CampaignService(root=root, jobs=1)
        state = fresh.status("narrow-1")
        assert state is not None and state["status"] == COMPLETED
        rows = fresh.results("narrow-1")
        assert all(row["result"] is not None for row in rows)


class TestArrivalIntegration:
    def test_poisson_stream_all_cached(self, service, primed):
        spec = narrow_spec(
            arrival={"process": "poisson", "rate": 100.0, "seed": 1})
        jobs = asyncio.run(
            service.submit_stream(spec, count=3, time_scale=0.0))
        assert len(jobs) == 3
        assert all(job.status == COMPLETED for job in jobs)
        assert all(job.cache_hit_fraction() == 1.0 for job in jobs)

    def test_metrics_snapshot_is_json_ready(self, service):
        snap = service.metrics_snapshot()
        json.dumps(snap)
        assert snap["counters"]["campaign.cache_hits"] >= 2
