"""Campaign fault tolerance: worker death, timeouts, partial resume.

The fault cell below misbehaves only in *child* processes (same
convention as ``tests/eval/test_parallel_hardening.py``), keyed off
the workload name so real :class:`CampaignSpec` cells can trigger it:
``histogramfs`` kills its worker (BrokenProcessPool), ``lreg`` sleeps
past the cell budget.  ``REPRO_FAULT_FIXED`` turns the faults off —
the "operator fixed it, resubmit" half of the resume tests — and
every invocation appends to a per-workload run log so the tests can
prove which cells actually re-executed.
"""

import asyncio
import multiprocessing
import os
import time

import pytest

from repro.eval import parallel
from repro.service import (COMPLETED, FAILED, CampaignService,
                           CampaignSpec, cell_digest)

pytestmark = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="fault fixture needs fork-inherited monkeypatching")

_MAIN_PID = os.getpid()


def _fault_cell(cell):
    logdir = os.environ.get("REPRO_FAULT_LOG")
    if logdir:
        with open(os.path.join(logdir, cell["name"]), "a") as fh:
            fh.write("x")
    in_child = os.getpid() != _MAIN_PID
    if in_child and not os.environ.get("REPRO_FAULT_FIXED"):
        if cell["name"] == "histogramfs":
            os._exit(3)              # simulated segfaulted worker
        if cell["name"] == "lreg":
            time.sleep(6)            # blows the cell budget
    return {"workload": cell["name"], "ran": True}


@pytest.fixture
def fault_pool(monkeypatch, tmp_path):
    monkeypatch.setattr(parallel, "_run_cell", _fault_cell)
    logdir = tmp_path / "runlog"
    logdir.mkdir()
    monkeypatch.setenv("REPRO_FAULT_LOG", str(logdir))
    monkeypatch.delenv("REPRO_FAULT_FIXED", raising=False)
    return logdir


def runs(logdir, name):
    try:
        return len(open(logdir / name).read())
    except OSError:
        return 0


def spec_of(*workloads):
    return CampaignSpec(workloads=workloads, systems=("pthreads",),
                        scale=0.05)


class TestWorkerCrash:
    def test_broken_pool_cell_retried_to_completion(self, fault_pool,
                                                    tmp_path):
        service = CampaignService(root=str(tmp_path / "svc"), jobs=2)
        job = service.run_spec(spec_of("histogram", "histogramfs"),
                               campaign_id="crash-1")
        # the dead worker broke the pool mid-campaign; the harness
        # re-ran the affected cells serially in the parent (where the
        # fault cell behaves), so the campaign still completes
        assert job.status == COMPLETED
        counts = job.counts()
        assert counts["ok"] == counts["total"] == 2
        assert counts["retried"] >= 1
        by_name = {e["cell"]["name"]: e for e in job.cells.values()}
        assert by_name["histogramfs"]["retried"]
        state = service.status("crash-1")
        assert state["counts"]["retried"] == counts["retried"]


class TestTimeout:
    def test_slow_cell_classified_and_campaign_failed(self,
                                                      fault_pool,
                                                      tmp_path):
        service = CampaignService(root=str(tmp_path / "svc"), jobs=2,
                                  timeout=0.75)
        job = service.run_spec(spec_of("histogram", "lreg"),
                               campaign_id="slow-1")
        assert job.status == FAILED
        counts = job.counts()
        assert counts["ok"] == 1 and counts["timeout"] == 1
        by_name = {e["cell"]["name"]: e for e in job.cells.values()}
        assert by_name["lreg"]["status"] == "timeout"
        assert not by_name["lreg"]["retried"]  # budget, not flakiness
        # a timed-out cell must never be served from the cache later
        (lreg_cell,) = spec_of("lreg").cells()
        assert service.store.get(cell_digest(lreg_cell)) is None

    def test_resubmit_reexecutes_only_the_unfinished_cell(
            self, fault_pool, tmp_path, monkeypatch):
        service = CampaignService(root=str(tmp_path / "svc"), jobs=2,
                                  timeout=0.75)
        spec = spec_of("histogram", "lreg")
        first = service.run_spec(spec, campaign_id="slow-2")
        assert first.status == FAILED
        histogram_runs = runs(fault_pool, "histogram")
        lreg_runs = runs(fault_pool, "lreg")

        # operator fixes the slow cell and resubmits the same id: the
        # campaign resumes from its state file, and only the cell that
        # never finished goes back to the pool
        monkeypatch.setenv("REPRO_FAULT_FIXED", "1")
        second = service.run_spec(spec, campaign_id="slow-2")
        assert second.status == COMPLETED
        assert second.counts()["ok"] == 2
        assert runs(fault_pool, "histogram") == histogram_runs
        assert runs(fault_pool, "lreg") == lreg_runs + 1


class TestRestartRecovery:
    def test_killed_service_resumes_interrupted_campaign(
            self, fault_pool, tmp_path, monkeypatch):
        """A service that died mid-campaign finishes it on restart."""
        root = str(tmp_path / "svc")
        first = CampaignService(root=root, jobs=2, timeout=0.75)
        job = first.run_spec(spec_of("histogram", "lreg"),
                             campaign_id="died-1")
        assert job.status == FAILED      # the "crash": left unfinished
        histogram_runs = runs(fault_pool, "histogram")

        # mark it non-terminal, as a mid-run crash would leave it
        job.status = "running"
        job.write_state()

        monkeypatch.setenv("REPRO_FAULT_FIXED", "1")
        revived = CampaignService(root=root, jobs=2, timeout=0.75)
        assert "died-1" in revived.incomplete_campaigns()
        done = asyncio.run(revived.serve(once=True))
        assert "died-1" in [j.id for j in done]
        assert revived.status("died-1")["status"] == COMPLETED
        assert runs(fault_pool, "histogram") == histogram_runs
