"""CampaignSpec: eager validation, expansion, versioned round-trip."""

import json

import pytest

from repro.errors import CampaignSpecError
from repro.service import SPEC_FORMAT, CampaignSpec


def grid_spec(**overrides):
    kwargs = dict(workloads=("histogram", "histogramfs"),
                  systems=("pthreads", "tmi-protect"), scale=0.05)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown workload"):
            grid_spec(workloads=("histogram", "nope"))

    def test_unknown_system_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown system"):
            grid_spec(systems=("pthreads", "xen"))

    def test_unknown_kind_rejected(self):
        with pytest.raises(CampaignSpecError, match="campaign kind"):
            grid_spec(kind="sweep")

    def test_unknown_config_key_rejected(self):
        with pytest.raises(CampaignSpecError, match="config key"):
            grid_spec(configs=({"perod": 100},))

    def test_known_config_keys_accepted(self):
        spec = grid_spec(configs=({"period": 50, "huge_pages": False},))
        assert spec.configs[0]["period"] == 50

    def test_bad_scale_rejected(self):
        with pytest.raises(CampaignSpecError, match="scale"):
            grid_spec(scale=0)

    def test_fuzz_needs_integer_seeds(self):
        with pytest.raises(CampaignSpecError, match="integer seeds"):
            grid_spec(kind="fuzz")
        with pytest.raises(CampaignSpecError, match="seeds must be"):
            grid_spec(kind="fuzz", seeds=("a",))

    def test_empty_workloads_rejected(self):
        with pytest.raises(CampaignSpecError, match=">= 1 workload"):
            CampaignSpec(workloads=())

    def test_arrival_needs_process_key(self):
        with pytest.raises(CampaignSpecError, match="process"):
            grid_spec(arrival={"rate": 2.0})

    def test_arrival_must_be_a_dict(self):
        # a non-container used to escape as TypeError; a string
        # containing "process" used to pass validation entirely
        with pytest.raises(CampaignSpecError, match="must be a dict"):
            grid_spec(arrival=3)
        with pytest.raises(CampaignSpecError, match="must be a dict"):
            grid_spec(arrival="process: poisson")

    def test_error_is_value_error(self):
        # argparse/except ValueError call sites keep working
        with pytest.raises(ValueError):
            grid_spec(kind="sweep")


class TestCells:
    def test_grid_cross_product(self):
        cells = grid_spec().cells()
        assert len(cells) == 4
        assert {(c["name"], c["system"]) for c in cells} == {
            ("histogram", "pthreads"), ("histogram", "tmi-protect"),
            ("histogramfs", "pthreads"),
            ("histogramfs", "tmi-protect")}
        assert all(c["scale"] == 0.05 for c in cells)

    def test_grid_ignores_seeds(self):
        # a deterministic grid cell has one result; replica seeds
        # would only re-derive identical digests
        assert len(grid_spec(seeds=(0, 1, 2)).cells()) == 4

    def test_fuzz_cells_carry_schedule(self):
        spec = grid_spec(kind="fuzz", seeds=(3, 4), policy="pct",
                         systems=("pthreads",),
                         workloads=("racy-flag",))
        cells = spec.cells()
        assert len(cells) == 2
        assert cells[0]["schedule"] == {"policy": "pct", "seed": 3}
        assert cells[1]["schedule"]["seed"] == 4

    def test_chaos_cells_carry_faults(self):
        spec = grid_spec(kind="chaos", seeds=(7,),
                         systems=("tmi-protect",),
                         workloads=("histogramfs",))
        (cell,) = spec.cells()
        assert cell["faults"]["seed"] == 7
        assert cell["faults"]["rates"]          # stock table, scaled

    def test_config_lands_in_cells(self):
        spec = grid_spec(configs=({"period": 25},),
                         workloads=("histogramfs",),
                         systems=("tmi-protect",))
        (cell,) = spec.cells()
        assert cell["config"] == {"period": 25}


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = grid_spec(priority=3, name="t",
                         arrival={"process": "poisson", "rate": 2.0})
        clone = CampaignSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()
        assert clone.cells() == spec.cells()

    def test_file_round_trip(self, tmp_path):
        spec = grid_spec(kind="fuzz", seeds=(1, 2))
        path = spec.save(str(tmp_path / "spec.json"))
        clone = CampaignSpec.load(path)
        assert clone.to_dict() == spec.to_dict()
        assert json.load(open(path))["format"] == SPEC_FORMAT

    def test_wrong_format_tag_rejected(self):
        data = grid_spec().to_dict()
        data["format"] = "something-else/9"
        with pytest.raises(CampaignSpecError, match="unsupported"):
            CampaignSpec.from_dict(data)

    def test_corrupted_file_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text('{"format": "repro-campaign-spec/1", trunc')
        with pytest.raises(CampaignSpecError, match="corrupted"):
            CampaignSpec.load(str(path))

    def test_missing_file_raises_typed_error(self, tmp_path):
        # the documented contract is typed errors on bad input — a
        # missing path must not leak a raw FileNotFoundError
        missing = str(tmp_path / "nope.json")
        with pytest.raises(CampaignSpecError, match="nope.json"):
            CampaignSpec.load(missing)

    def test_digest_stable_and_distinct(self):
        assert grid_spec().digest() == grid_spec().digest()
        assert grid_spec().digest() != grid_spec(scale=0.1).digest()
