"""Service overload + submission-race regressions.

Two high-severity bugs are pinned here:

- The bounded submission queue used to block ``submit`` on a full
  queue even though submission and draining run in one asyncio task —
  an inbox (or open-loop stream) with more specs than ``queue_limit``
  deadlocked the service.  Now a full queue drains inline.
- ``ServiceClient.submit`` used to check-then-act on the campaign id
  and ``os.replace`` the inbox file, so two clients racing on the
  same spec digest silently lost one submission.  Now the inbox file
  is claimed atomically via ``link(2)``.

Everything runs on the fake-runner seam (monkeypatched
``repro.eval.parallel._run_cell``) so overload scenarios stay fast.
"""

import asyncio
import os

import pytest

from repro.eval import parallel
from repro.service import (COMPLETED, CampaignService, CampaignSpec,
                           ServiceClient)


@pytest.fixture
def ok_pool(monkeypatch):
    monkeypatch.setattr(parallel, "_run_cell",
                        lambda cell: dict(cell, ran=True))


def tiny_spec(**overrides):
    kwargs = dict(workloads=("histogram",), systems=("pthreads",),
                  scale=0.05, name="tiny")
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


def make_service(tmp_path, **kwargs):
    kwargs.setdefault("jobs", 1)
    return CampaignService(root=str(tmp_path / "svc"), **kwargs)


class TestOverload:
    def test_inbox_deeper_than_queue_never_hangs(self, ok_pool,
                                                 tmp_path):
        """Regression: >queue_limit inbox specs deadlocked serve."""
        service = make_service(tmp_path, queue_limit=2)
        client = ServiceClient(service.root)
        ids = [client.submit(tiny_spec(), f"flood-{index}")
               for index in range(5)]

        done = asyncio.run(
            asyncio.wait_for(service.serve(once=True), timeout=60.0))
        assert sorted(job.id for job in done) == sorted(ids)
        for campaign_id in ids:
            assert service.status(campaign_id)["status"] == COMPLETED

    def test_open_loop_stream_deeper_than_queue(self, ok_pool,
                                                tmp_path):
        """Regression: an open-loop stream with count>queue_limit
        blocked forever on the first over-limit submission."""
        service = make_service(tmp_path, queue_limit=2)
        spec = tiny_spec(
            arrival={"process": "poisson", "rate": 100.0, "seed": 1})

        jobs = asyncio.run(asyncio.wait_for(
            service.submit_stream(spec, count=5, time_scale=0.0),
            timeout=60.0))
        assert len(jobs) == 5
        assert all(job.status == COMPLETED for job in jobs)
        counters = service.metrics_snapshot()["counters"]
        assert counters["campaign.backpressure"] >= 1


class TestAtomicReservation:
    def test_racing_clients_get_distinct_ids(self, ok_pool, tmp_path):
        """Same spec digest from two clients: two inbox files, no
        silent overwrite."""
        service = make_service(tmp_path)
        first = ServiceClient(service.root)
        second = ServiceClient(service.root)

        id_a = first.submit(tiny_spec())
        id_b = second.submit(tiny_spec())
        assert id_a != id_b
        for campaign_id in (id_a, id_b):
            assert os.path.exists(os.path.join(
                service.inbox_dir, f"{campaign_id}.json"))

    def test_explicit_duplicate_id_refused_not_clobbered(
            self, ok_pool, tmp_path):
        service = make_service(tmp_path)
        client = ServiceClient(service.root)
        client.submit(tiny_spec(), "dup")
        with pytest.raises(FileExistsError):
            client.submit(tiny_spec(), "dup")

    def test_reservation_skips_accepted_ids(self, ok_pool, tmp_path):
        """An id whose inbox file was renamed ``.accepted`` (and whose
        state lives in campaigns/) is never reused."""
        service = make_service(tmp_path)
        client = ServiceClient(service.root)
        first = client.submit(tiny_spec())
        asyncio.run(service.serve(once=True))
        assert os.path.exists(os.path.join(
            service.inbox_dir, f"{first}.json.accepted"))

        second = client.submit(tiny_spec())
        assert second != first

    def test_no_temp_files_left_behind(self, ok_pool, tmp_path):
        service = make_service(tmp_path)
        client = ServiceClient(service.root)
        client.submit(tiny_spec())
        leftovers = [name for name in os.listdir(service.inbox_dir)
                     if name.endswith(".tmp")]
        assert leftovers == []
