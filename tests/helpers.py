"""Shared program builders for the test suite."""

import random

from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine, Program
from repro.isa import Binary
from repro.sim.costs import CostModel
from repro.sim.machine import Machine
from repro.sim.physmem import PhysicalMemory


def make_program(main, name="test", nthreads=4, binary=None, **kwargs):
    """Wrap a main generator function into a Program."""
    return Program(name, binary or Binary(name), main,
                   nthreads=nthreads, **kwargs)


def run_program(main, runtime=None, name="test", nthreads=4, binary=None,
                policy=None, max_cycles=None, **kwargs):
    """Build + run a program; returns (RunResult, Engine).

    ``policy`` is a :class:`repro.schedule.SchedulePolicy` (or spec
    dict) to run under; ``max_cycles`` bounds the simulated budget.
    """
    program = make_program(main, name, nthreads, binary, **kwargs)
    engine_kwargs = {}
    if policy is not None:
        from repro.schedule import make_policy
        engine_kwargs["policy"] = make_policy(policy)
    if max_cycles is not None:
        engine_kwargs["max_cycles"] = max_cycles
    engine = Engine(program, runtime or PthreadsRuntime(),
                    **engine_kwargs)
    result = engine.run()
    return result, engine


def fs_counter_program(iters=2000, stride=8, nworkers=4, compute=0,
                       name="fscounter", env=None):
    """Per-thread counters ``stride`` bytes apart: stride=8 falsely
    shares one line; stride=64 is the padded manual fix."""
    binary = Binary(name)
    ld = binary.load_site("ld", 8)
    st = binary.store_site("st", 8)
    program_box = {}

    def main(t):
        buf = yield from t.malloc(4096, align=64)
        program_box["buf"] = buf

        def worker(w):
            slot = buf + (w.tid - 1) * stride
            for _ in range(iters):
                value = yield from w.load(slot, 8, site=ld)
                yield from w.store(slot, value + 1, 8, site=st)
                if compute:
                    yield from w.compute(compute)

        tids = []
        for i in range(nworkers):
            tid = yield from t.spawn(worker, f"w{i}")
            tids.append(tid)
        for tid in tids:
            yield from t.join(tid)
        total = 0
        for i in range(nworkers):
            total += yield from t.load(buf + i * stride, 8, site=ld)
        program_box["total"] = total

    def validate(env_, engine):
        assert program_box["total"] == iters * nworkers, program_box

    program = Program(name, binary, main, nthreads=nworkers)
    program.validate = validate
    program.env = program_box
    return program


_WORD = 0xFFFFFFFFFFFFFFFF


def random_program(seed, nthreads=3, nlocks=2, nlines=4,
                   ops_per_thread=40, env=None, batched=False):
    """Seeded random lock-disciplined program (threads x locks x
    shared cache lines).

    Every shared line is guarded by a fixed lock (``line % nlocks``)
    and all its updates use one commutative operator (add or xor,
    chosen per line), so the program is race-free *and* confluent: any
    legal interleaving produces the same final memory.  That makes the
    family a schedule-fuzzing oracle — ``env["finals"]`` must equal
    ``env["expected"]`` under every policy and seed.

    ``batched=True`` additionally interleaves private batched
    stretches (``load_run``/``store_run``/``rmw_seq``/``store_seq``
    over a per-thread block) between the locked shared updates — the
    shapes the vector executor accelerates — without touching the
    shared-line oracle.  The default stays byte-identical to the
    original generator (the rng consumes the same stream).

    Returns the Program; ``env`` (or the passed-in dict) carries
    ``buf``, ``finals`` and the statically computed ``expected``.
    """
    rng = random.Random(seed)
    name = f"rand{seed}"
    binary = Binary(name)
    ld = binary.load_site("ld", 8)
    st = binary.store_site("st", 8)
    env = {} if env is None else env
    line_kind = [rng.choice(("add", "xor")) for _ in range(nlines)]
    plans = []
    for _ in range(nthreads):
        steps = []
        for _ in range(ops_per_thread):
            if batched and rng.random() < 0.4:
                kind = rng.choice(("load_run", "store_run",
                                   "rmw_seq", "store_seq"))
                count = rng.randrange(4, 48)
                off = rng.randrange(0, 8) * 8
                compute = rng.choice((0, 0, 3, 17))
                operand = rng.randrange(1, 1 << 20)
                steps.append(("batch", kind, count, off, compute,
                              operand))
                continue
            line = rng.randrange(nlines)
            operand = rng.randrange(1, 1 << 30)
            delay = rng.choice((0, 0, 60, 200))
            steps.append(("shared", line, operand, delay))
        plans.append(steps)

    expected = [0] * nlines
    for steps in plans:
        for step in steps:
            if step[0] != "shared":
                continue
            _, line, operand, _delay = step
            if line_kind[line] == "add":
                expected[line] = (expected[line] + operand) & _WORD
            else:
                expected[line] ^= operand
    env["expected"] = expected

    #: Per-thread private block: 8 lines, disjoint across threads.
    PRIV = 512

    def main(t):
        buf = yield from t.malloc(64 * nlines + 64, align=64)
        env["buf"] = buf
        priv = 0
        if batched:
            # only allocated when requested, so batched=False programs
            # stay byte-identical to the pre-batched generator
            priv = yield from t.malloc(PRIV * nthreads, align=64)
            env["priv"] = priv
        locks = []
        for i in range(nlocks):
            lock = yield from t.mutex(f"l{i}")
            locks.append(lock)

        def worker(w):
            steps = plans[w.tid - 1]
            base = priv + (w.tid - 1) * PRIV
            for step in steps:
                if step[0] == "batch":
                    _, kind, count, off, compute, operand = step
                    addr = base + off
                    if kind == "load_run":
                        yield from w.load_run(addr, count, 8, width=8,
                                              site=ld)
                    elif kind == "store_run":
                        yield from w.store_run(addr, operand, count, 8,
                                               width=8, site=st)
                    elif kind == "rmw_seq":
                        addrs = tuple(base + (i % 48) * 8
                                      for i in range(count))
                        yield from w.rmw_seq(addrs, 8, operand,
                                             compute, load_site=ld,
                                             store_site=st)
                    else:
                        values = tuple((operand + i) & _WORD
                                       for i in range(count))
                        yield from w.store_seq(addr, values, 8,
                                               compute, site=st)
                    if compute:
                        yield from w.compute(compute)
                    continue
                _, line, operand, delay = step
                addr = buf + line * 64
                yield from w.lock(locks[line % nlocks])
                value = yield from w.load(addr, 8, site=ld)
                if line_kind[line] == "add":
                    value = (value + operand) & _WORD
                else:
                    value ^= operand
                yield from w.store(addr, value, 8, site=st)
                yield from w.unlock(locks[line % nlocks])
                if delay:
                    yield from w.compute(delay)

        tids = []
        for i in range(nthreads):
            tid = yield from t.spawn(worker, f"w{i}")
            tids.append(tid)
        for tid in tids:
            yield from t.join(tid)
        finals = []
        for i in range(nlines):
            value = yield from t.load(buf + i * 64, 8, site=ld)
            finals.append(value)
        env["finals"] = finals

    def validate(env_, engine):
        assert env["finals"] == expected, (
            f"confluent program diverged: {env['finals']} "
            f"!= {expected}")

    program = Program(name, binary, main, nthreads=nthreads)
    program.validate = validate
    program.env = env
    return program
