"""Shared program builders for the test suite."""

from repro.baselines.pthreads import PthreadsRuntime
from repro.engine import Engine, Program
from repro.isa import Binary
from repro.sim.costs import CostModel
from repro.sim.machine import Machine
from repro.sim.physmem import PhysicalMemory


def make_program(main, name="test", nthreads=4, binary=None, **kwargs):
    """Wrap a main generator function into a Program."""
    return Program(name, binary or Binary(name), main,
                   nthreads=nthreads, **kwargs)


def run_program(main, runtime=None, name="test", nthreads=4, binary=None,
                **kwargs):
    """Build + run a program; returns (RunResult, Engine)."""
    program = make_program(main, name, nthreads, binary, **kwargs)
    engine = Engine(program, runtime or PthreadsRuntime())
    result = engine.run()
    return result, engine


def fs_counter_program(iters=2000, stride=8, nworkers=4, compute=0,
                       name="fscounter", env=None):
    """Per-thread counters ``stride`` bytes apart: stride=8 falsely
    shares one line; stride=64 is the padded manual fix."""
    binary = Binary(name)
    ld = binary.load_site("ld", 8)
    st = binary.store_site("st", 8)
    program_box = {}

    def main(t):
        buf = yield from t.malloc(4096, align=64)
        program_box["buf"] = buf

        def worker(w):
            slot = buf + (w.tid - 1) * stride
            for _ in range(iters):
                value = yield from w.load(slot, 8, site=ld)
                yield from w.store(slot, value + 1, 8, site=st)
                if compute:
                    yield from w.compute(compute)

        tids = []
        for i in range(nworkers):
            tid = yield from t.spawn(worker, f"w{i}")
            tids.append(tid)
        for tid in tids:
            yield from t.join(tid)
        total = 0
        for i in range(nworkers):
            total += yield from t.load(buf + i * stride, 8, site=ld)
        program_box["total"] = total

    def validate(env_, engine):
        assert program_box["total"] == iters * nworkers, program_box

    program = Program(name, binary, main, nthreads=nworkers)
    program.validate = validate
    program.env = program_box
    return program
