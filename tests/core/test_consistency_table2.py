"""Code-centric consistency: the paper's Table 2 policy."""

import pytest

from repro.core.consistency import (ASM, ATOMIC, CodeCentricPolicy,
                                    REGULAR, TABLE2, table2_semantics)
from repro.isa.binary import Binary
from repro.isa.ops import (AtomicLoad, AtomicRMW, AtomicStore, Load,
                           RELAXED, SEQ_CST, Store)


class FakeThread:
    def __init__(self, regions=()):
        self.region_stack = list(regions)


class TestTable2:
    """The five numbered cases of Table 2."""

    def test_case1_regular_regular_undefined_ptsb_ok(self):
        assert table2_semantics(REGULAR, REGULAR) == ("undefined", True)

    def test_case1_regular_atomic_undefined_ptsb_ok(self):
        assert table2_semantics(REGULAR, ATOMIC) == ("undefined", True)

    def test_case2_atomic_atomic_no_ptsb(self):
        semantics, permitted = table2_semantics(ATOMIC, ATOMIC)
        assert semantics == "atomic" and not permitted

    def test_case3_regular_asm_unknown_no_ptsb(self):
        semantics, permitted = table2_semantics(REGULAR, ASM)
        assert semantics == "unknown" and not permitted

    def test_case4_atomic_asm_unknown_no_ptsb(self):
        semantics, permitted = table2_semantics(ASM, ATOMIC)
        assert semantics == "unknown" and not permitted

    def test_case5_asm_asm_tso(self):
        semantics, permitted = table2_semantics(ASM, ASM)
        assert semantics == "TSO" and not permitted

    def test_table_is_symmetric(self):
        for a in (REGULAR, ATOMIC, ASM):
            for b in (REGULAR, ATOMIC, ASM):
                assert table2_semantics(a, b) == table2_semantics(b, a)

    def test_exactly_five_cases(self):
        assert len(TABLE2) == 6      # 6 unordered pairs over 3 kinds
        assert sum(1 for _s, ok in TABLE2.values() if ok) == 2


class TestPolicy:
    def setup_method(self):
        self.policy = CodeCentricPolicy(enabled=True)
        self.binary = Binary("t")
        self.site = self.binary.atomic_site("a", 8)

    def test_seq_cst_atomic_region_flushes(self):
        decision = self.policy.on_region_begin(FakeThread(), ATOMIC,
                                               SEQ_CST)
        assert decision.flush_ptsb and decision.bypass_ptsb

    def test_relaxed_atomic_region_skips_flush(self):
        """Section 3.4.1: relaxed needs atomicity only — no PTSB flush
        (the shptr-relaxed optimization)."""
        decision = self.policy.on_region_begin(FakeThread(), ATOMIC,
                                               RELAXED)
        assert not decision.flush_ptsb
        assert decision.bypass_ptsb
        assert self.policy.relaxed_fast_path == 1

    def test_asm_region_flushes(self):
        decision = self.policy.on_region_begin(FakeThread(), ASM, SEQ_CST)
        assert decision.flush_ptsb and decision.bypass_ptsb

    def test_atomic_ops_bypass_ptsb(self):
        thread = FakeThread()
        for op in (AtomicRMW(self.site, 0, "add", 1, 8),
                   AtomicLoad(self.site, 0, 8),
                   AtomicStore(self.site, 0, 1, 8)):
            assert self.policy.access_bypasses_ptsb(thread, op)

    def test_plain_ops_use_ptsb(self):
        ld = Load(self.binary.load_site("l", 8), 0, 8)
        assert not self.policy.access_bypasses_ptsb(FakeThread(), ld)

    def test_volatile_ops_bypass_ptsb(self):
        """Figure 12: volatile flags get the SC semantics the programmer
        intended."""
        st = Store(self.binary.store_site("s", 4), 0, 1, 4, volatile=True)
        assert self.policy.access_bypasses_ptsb(FakeThread(), st)

    def test_everything_in_asm_region_bypasses(self):
        thread = FakeThread(regions=[(ASM, SEQ_CST)])
        ld = Load(self.binary.load_site("l2", 8), 0, 8)
        assert self.policy.access_bypasses_ptsb(thread, ld)

    def test_disabled_policy_is_all_nops(self):
        """The unsafe ablation (Sheriff-equivalent behaviour)."""
        policy = CodeCentricPolicy(enabled=False)
        decision = policy.on_region_begin(FakeThread(), ASM, SEQ_CST)
        assert not decision.flush_ptsb and not decision.bypass_ptsb
        rmw = AtomicRMW(self.site, 0, "add", 1, 8)
        assert not policy.access_bypasses_ptsb(FakeThread(), rmw)

    def test_flush_counter(self):
        self.policy.on_region_begin(FakeThread(), ATOMIC, SEQ_CST)
        self.policy.on_region_begin(FakeThread(), ASM, SEQ_CST)
        self.policy.on_region_begin(FakeThread(), ATOMIC, RELAXED)
        assert self.policy.flushes == 2
