"""True vs. false sharing classification from sampled accesses."""

from repro.core.classify import (FALSE_SHARING, LineStats, NO_SHARING,
                                 TRUE_SHARING)


def line(*samples):
    stats = LineStats(0x1000)
    for tid, offset, width, is_store in samples:
        stats.add(tid, offset, width, is_store)
    return stats


class TestClassification:
    def test_single_thread_is_no_sharing(self):
        stats = line((1, 0, 8, True), (1, 8, 8, True))
        assert stats.classify()[0] == NO_SHARING

    def test_read_read_same_offset_is_true_sharing(self):
        """Load-only samples still came from HITMs (a writer exists);
        overlapping offsets mean the threads share the same datum."""
        stats = line((1, 0, 8, False), (2, 0, 8, False))
        assert stats.classify()[0] == TRUE_SHARING

    def test_read_read_disjoint_is_false_sharing(self):
        """PEBS under-reports stores: two threads' load HITMs at
        disjoint offsets are false-sharing evidence (section 3.1)."""
        stats = line((1, 0, 8, False), (2, 32, 8, False))
        assert stats.classify()[0] == FALSE_SHARING

    def test_disjoint_writes_are_false_sharing(self):
        stats = line((1, 0, 8, True), (2, 8, 8, True))
        label, false_w, true_w = stats.classify()
        assert label == FALSE_SHARING
        assert false_w > 0 and true_w == 0

    def test_overlapping_writes_are_true_sharing(self):
        stats = line((1, 0, 8, True), (2, 0, 8, True))
        label, false_w, true_w = stats.classify()
        assert label == TRUE_SHARING
        assert true_w > 0 and false_w == 0

    def test_read_write_disjoint_is_false_sharing(self):
        """Paper's example: 1-byte load at L1, 1-byte store at L2 != L1."""
        stats = line((1, 10, 1, False), (2, 20, 1, True))
        assert stats.classify()[0] == FALSE_SHARING

    def test_partial_overlap_is_true_sharing(self):
        stats = line((1, 0, 8, True), (2, 4, 8, True))
        assert stats.classify()[0] == TRUE_SHARING

    def test_mixed_line_majority_wins(self):
        samples = [(1, 0, 4, True), (2, 32, 4, True)] * 10
        samples += [(1, 16, 4, True), (2, 16, 4, True)]
        assert line(*samples).classify()[0] == FALSE_SHARING

    def test_majority_true_wins(self):
        samples = [(1, 16, 4, True), (2, 16, 4, True)] * 10
        samples += [(1, 0, 4, True), (2, 32, 4, True)]
        assert line(*samples).classify()[0] == TRUE_SHARING

    def test_reader_only_thread_vs_writer_disjoint(self):
        stats = line((1, 0, 4, False), (1, 0, 4, False),
                     (2, 32, 4, True))
        assert stats.classify()[0] == FALSE_SHARING

    def test_three_threads_false_sharing(self):
        stats = line((1, 0, 8, True), (2, 16, 8, True), (3, 32, 8, True))
        label, false_w, _ = stats.classify()
        assert label == FALSE_SHARING
        assert false_w >= 3       # three disjoint pairs

    def test_skid_offset_clamped(self):
        stats = LineStats(0x1000)
        stats.add(1, 70, 8, True)       # skid pushed it past the line
        stats.add(2, 0, 8, True)
        assert stats.classify()[0] in (FALSE_SHARING, TRUE_SHARING)

    def test_record_count(self):
        stats = line((1, 0, 8, True), (2, 8, 8, True), (2, 8, 8, True))
        assert stats.records == 3
