"""Repair manager mechanics: conversion, protection, page splitting."""

import pytest

from repro.core import TmiConfig, TmiRuntime
from repro.engine import Engine
from repro.sim.addrspace import PRIVATE, SHARED
from repro.sim.costs import PAGE_2M, PAGE_4K

from helpers import fs_counter_program


def run_repair(config=None, **kwargs):
    kwargs.setdefault("iters", 30_000)
    runtime = TmiRuntime("protect", config or TmiConfig())
    engine = Engine(fs_counter_program(**kwargs), runtime)
    result = engine.run()
    return result, engine, runtime


class TestTargetedProtection:
    def test_only_hot_pages_protected(self):
        result, engine, runtime = run_repair()
        assert runtime.repair.converted
        protected = runtime.repair.protected_pages
        assert 1 <= len(protected) <= 2
        # a cold heap page in some process stays shared
        worker = next(t for t in engine.threads.values()
                      if t.tid != 0)
        aspace = worker.process.aspace
        cold_va = max(protected) + 1 << 20
        mapping = aspace.mapping_at(0x4000_0000 + (1 << 22))
        assert mapping is not None

    def test_split_yields_4k_protection_under_huge_pages(self):
        config = TmiConfig(huge_pages=True, repair_page_split=True)
        result, engine, runtime = run_repair(config=config)
        assert runtime.repair.converted
        for page_va, size in runtime.repair.protected_pages.items():
            assert size == PAGE_4K
        # the split mapping exists in each app process
        for thread in engine.threads.values():
            page_va = next(iter(runtime.repair.protected_pages))
            mapping = thread.process.aspace.mapping_at(page_va)
            assert mapping.page_size == PAGE_4K

    def test_no_split_when_disabled(self):
        config = TmiConfig(huge_pages=True, repair_page_split=False)
        result, engine, runtime = run_repair(config=config)
        if runtime.repair.protected_pages:
            sizes = set(runtime.repair.protected_pages.values())
            assert sizes == {PAGE_2M}

    def test_everywhere_mode_marks_all_app_mappings(self):
        config = TmiConfig(targeted=False, huge_pages=False)
        result, engine, runtime = run_repair(config=config)
        if not runtime.repair.converted:
            pytest.skip("no repair episode triggered")
        for thread in engine.threads.values():
            for mapping in thread.process.aspace.mappings():
                kind = mapping.name.split(":")[0]
                if kind in ("heap", "globals", "stack"):
                    assert mapping.mode == PRIVATE
                else:
                    assert mapping.mode == SHARED


class TestConversionBookkeeping:
    def test_t2p_recorded_once(self):
        result, engine, runtime = run_repair()
        assert len(runtime.stats.conversions) == 1
        record = runtime.stats.conversions[0]
        assert record.thread_count == len(engine.threads)

    def test_all_processes_have_ptsbs(self):
        result, engine, runtime = run_repair()
        for thread in engine.threads.values():
            assert thread.process.ptsb is not None

    def test_protection_isolates_physically(self):
        result, engine, runtime = run_repair()
        page_va = next(iter(runtime.repair.protected_pages))
        frames = set()
        for thread in engine.threads.values():
            pa = thread.process.aspace.private_pa(page_va)
            if pa is not None:
                frames.add(pa)
        # any two live private frames are distinct physical pages
        assert len(frames) == len([
            t for t in engine.threads.values()
            if t.process.aspace.private_pa(page_va) is not None])
