"""Property-based tests on PTSB diff/merge.

The central invariant is the paper's Lemma 3.1: for race-free
(synchronized) update sequences, diff/merge preserves written values
exactly; tearing requires an actual race.
"""

from hypothesis import given, settings, strategies as st

from repro.core.ptsb import PageTwinningStoreBuffer, _changed_runs
from repro.engine.thread import SimProcess
from repro.sim.addrspace import AddressSpace, Backing
from repro.sim.machine import Machine

BASE = 0x4000_0000

pages = st.binary(min_size=256, max_size=256)
mutations = st.lists(
    st.tuples(st.integers(0, 255), st.integers(0, 255)),
    min_size=0, max_size=40)


@given(pages, mutations)
@settings(max_examples=80, deadline=None)
def test_changed_runs_exactly_cover_differences(twin, muts):
    working = bytearray(twin)
    for offset, value in muts:
        working[offset] = value
    runs = _changed_runs(twin, bytes(working))
    covered = set()
    for start, end in runs:
        assert start < end
        for i in range(start, end):
            assert twin[i] != working[i]      # no false positives
            covered.add(i)
    for i in range(len(twin)):                # no false negatives
        if twin[i] != working[i]:
            assert i in covered


@given(mutations)
@settings(max_examples=40, deadline=None)
def test_commit_reproduces_private_writes_in_shared(muts):
    """Single-writer: after commit, shared memory equals the private
    view byte for byte (no race, no tearing — Lemma 3.1)."""
    machine = Machine(n_cores=2)
    aspace = AddressSpace(machine.physmem, machine.costs)
    backing = Backing(machine.physmem, 4096, "app", file_backed=True)
    aspace.mmap(BASE, 4096, backing, name="heap")
    process = SimProcess(pid=1, aspace=aspace)
    ptsb = PageTwinningStoreBuffer(process, machine, machine.costs)
    aspace.protect_page(BASE)

    expected = bytearray(4096)
    for offset, value in muts:
        tr = aspace.translate(BASE + offset, 1, True)
        machine.physmem.write(tr.pa, bytes([value]))
        expected[offset] = value
    ptsb.commit(0, "unlock")
    assert machine.physmem.read(backing.base_pa, 4096) == bytes(expected)


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 126),
                          st.integers(1, 255)),
                min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_synchronized_interleaving_never_tears(ops):
    """Two processes alternating under lock discipline (commit after
    every write batch) always leave exactly the last written value."""
    machine = Machine(n_cores=2)
    aspace0 = AddressSpace(machine.physmem, machine.costs)
    backing = Backing(machine.physmem, 4096, "app", file_backed=True)
    aspace0.mmap(BASE, 4096, backing, name="heap")
    p0 = SimProcess(pid=1, aspace=aspace0)
    p1 = SimProcess(pid=2, aspace=aspace0.fork("p2"))
    ptsbs = {0: PageTwinningStoreBuffer(p0, machine, machine.costs),
             1: PageTwinningStoreBuffer(p1, machine, machine.costs)}
    procs = {0: p0, 1: p1}
    for proc in procs.values():
        proc.aspace.protect_page(BASE)

    model = {}
    for who_first, slot, value in ops:
        who = 0 if who_first else 1
        addr = BASE + slot * 2
        tr = procs[who].aspace.translate(addr, 2, True)
        machine.physmem.write_int(tr.pa, value, 2)
        ptsbs[who].commit(who, "unlock")     # release the lock
        model[slot] = value
    for slot, value in model.items():
        assert machine.physmem.read_int(
            backing.base_pa + slot * 2, 2) == value
