"""PTSB twin/diff/merge mechanics, including the paper's Figure 3
word-tearing litmus (AMBSA violation)."""

import pytest

from repro.core.ptsb import PageTwinningStoreBuffer, _changed_runs
from repro.engine.thread import SimProcess
from repro.sim.addrspace import AddressSpace, Backing
from repro.sim.costs import CostModel, PAGE_2M
from repro.sim.machine import Machine

BASE = 0x4000_0000


def make_process(machine, page_size=4096, pid=1):
    aspace = AddressSpace(machine.physmem, machine.costs, f"p{pid}")
    backing = Backing(machine.physmem, 1 << 21, "app", file_backed=True)
    aspace.mmap(BASE, 1 << 21, backing, page_size=page_size, name="heap")
    proc = SimProcess(pid=pid, aspace=aspace)
    return proc, backing


class TestChangedRuns:
    def test_no_change(self):
        assert _changed_runs(b"\x00" * 256, b"\x00" * 256) == []

    def test_single_byte(self):
        twin = bytearray(256)
        work = bytearray(256)
        work[100] = 7
        assert _changed_runs(bytes(twin), bytes(work)) == [(100, 101)]

    def test_run_spanning_lines(self):
        twin = bytearray(256)
        work = bytearray(256)
        for i in range(60, 70):
            work[i] = 1
        runs = _changed_runs(bytes(twin), bytes(work))
        merged = []
        for start, end in runs:
            if merged and merged[-1][1] == start:
                merged[-1] = (merged[-1][0], end)
            else:
                merged.append((start, end))
        assert merged == [(60, 70)]

    def test_change_at_page_end(self):
        twin = bytearray(4096)
        work = bytearray(4096)
        work[4095] = 9
        assert _changed_runs(bytes(twin), bytes(work)) == [(4095, 4096)]

    def test_identical_value_rewrite_is_invisible(self):
        """The diff cannot see a byte overwritten with the same value —
        the root cause of AMBSA violations (section 2.2)."""
        twin = bytes([5] * 64)
        work = bytes([5] * 64)
        assert _changed_runs(twin, work) == []


class TestCommit:
    def test_write_captures_twin_and_commit_merges(self, machine):
        proc, backing = make_process(machine)
        ptsb = PageTwinningStoreBuffer(proc, machine, machine.costs)
        proc.aspace.protect_page(BASE)
        tr = proc.aspace.translate(BASE + 8, 8, True)
        machine.physmem.write_int(tr.pa, 1234, 8)
        assert ptsb.dirty_pages == 1
        cost = ptsb.commit(core=0, reason="lock")
        assert cost > 0
        assert machine.physmem.read_int(backing.base_pa + 8, 8) == 1234
        assert ptsb.dirty_pages == 0

    def test_commit_rearms_page(self, machine):
        proc, backing = make_process(machine)
        ptsb = PageTwinningStoreBuffer(proc, machine, machine.costs)
        proc.aspace.protect_page(BASE)
        tr = proc.aspace.translate(BASE, 8, True)
        machine.physmem.write_int(tr.pa, 1, 8)
        ptsb.commit(0, "lock")
        # reads now see shared again; next write re-COWs
        assert proc.aspace.translate(BASE, 8, False).pa == backing.base_pa
        tr2 = proc.aspace.translate(BASE, 8, True)
        assert tr2.pa != backing.base_pa
        assert ptsb.dirty_pages == 1

    def test_commit_only_touches_changed_bytes(self, machine):
        proc, backing = make_process(machine)
        machine.physmem.write_int(backing.base_pa + 0, 111, 8)
        ptsb = PageTwinningStoreBuffer(proc, machine, machine.costs)
        proc.aspace.protect_page(BASE)
        tr = proc.aspace.translate(BASE + 64, 8, True)
        machine.physmem.write_int(tr.pa + 0, 999, 8)   # offset 64
        # concurrent shared update to a byte this process didn't change
        machine.physmem.write_int(backing.base_pa + 0, 222, 8)
        ptsb.commit(0, "lock")
        assert machine.physmem.read_int(backing.base_pa + 0, 8) == 222
        assert machine.physmem.read_int(backing.base_pa + 64, 8) == 999

    def test_empty_commit_is_free(self, machine):
        proc, _ = make_process(machine)
        ptsb = PageTwinningStoreBuffer(proc, machine, machine.costs)
        assert ptsb.commit(0, "lock") == 0
        assert ptsb.commit_count == 1

    def test_commit_counts_stats(self, machine):
        proc, _ = make_process(machine)
        infos = []
        ptsb = PageTwinningStoreBuffer(proc, machine, machine.costs,
                                       on_commit=infos.append)
        proc.aspace.protect_page(BASE)
        proc.aspace.protect_page(BASE + 4096)
        for off in (0, 4096):
            tr = proc.aspace.translate(BASE + off, 8, True)
            machine.physmem.write_int(tr.pa, off + 1, 8)
        ptsb.commit(0, "barrier")
        assert ptsb.committed_pages == 2
        assert infos and infos[0]["pages"] == 2

    def test_huge_page_commit_optimized_cheaper(self, machine):
        costs = CostModel()

        def run(optimized):
            m = Machine(n_cores=4)
            proc, _ = make_process(m, page_size=PAGE_2M)
            ptsb = PageTwinningStoreBuffer(
                proc, m, costs, huge_commit_optimization=optimized)
            proc.aspace.protect_page(BASE)
            tr = proc.aspace.translate(BASE, 8, True)
            m.physmem.write_int(tr.pa, 42, 8)
            return ptsb.commit(0, "lock")

        assert run(True) < run(False)


class TestAmbsaFigure3:
    """Figure 3: two aligned 2-byte stores merged through PTSBs can
    produce a value no thread ever wrote (0xABCD)."""

    def test_word_tearing_reproduces(self, machine):
        proc0, backing = make_process(machine, pid=1)
        proc1 = SimProcess(pid=2, aspace=proc0.aspace.fork("p2"))
        ptsb0 = PageTwinningStoreBuffer(proc0, machine, machine.costs)
        ptsb1 = PageTwinningStoreBuffer(proc1, machine, machine.costs)
        x = BASE + 128                       # 2-byte aligned, x == 0
        proc0.aspace.protect_page(BASE)
        proc1.aspace.protect_page(BASE)

        # thread 0: store x <- 0xAB00 ; thread 1: store x <- 0x00CD
        tr0 = proc0.aspace.translate(x, 2, True)
        machine.physmem.write_int(tr0.pa, 0xAB00, 2)
        tr1 = proc1.aspace.translate(x, 2, True)
        machine.physmem.write_int(tr1.pa, 0x00CD, 2)

        ptsb0.commit(0, "unlock")
        ptsb1.commit(1, "unlock")
        final = machine.physmem.read_int(backing.base_pa + 128, 2)
        assert final == 0xABCD               # AMBSA violated

    def test_no_tearing_without_race(self, machine):
        """Lemma 3.1: with synchronization (commit+refetch between the
        stores), the diff/merge preserves values exactly."""
        proc0, backing = make_process(machine, pid=1)
        proc1 = SimProcess(pid=2, aspace=proc0.aspace.fork("p2"))
        ptsb0 = PageTwinningStoreBuffer(proc0, machine, machine.costs)
        ptsb1 = PageTwinningStoreBuffer(proc1, machine, machine.costs)
        x = BASE + 128
        proc0.aspace.protect_page(BASE)
        proc1.aspace.protect_page(BASE)

        tr0 = proc0.aspace.translate(x, 2, True)
        machine.physmem.write_int(tr0.pa, 0xAB00, 2)
        ptsb0.commit(0, "unlock")            # release the lock
        # thread 1 acquires: PTSB empty, sees shared value, then writes
        tr1 = proc1.aspace.translate(x, 2, True)
        assert machine.physmem.read_int(tr1.pa, 2) == 0xAB00
        machine.physmem.write_int(tr1.pa, 0x00CD, 2)
        ptsb1.commit(1, "unlock")
        final = machine.physmem.read_int(backing.base_pa + 128, 2)
        assert final == 0x00CD               # the last writer's value
