"""Figure 3 litmus, engine-level: the word-tearing program run as an
actual two-thread program under each runtime.

``x`` is 2-byte aligned and initially 0; thread 0 stores 0xAB00 and
thread 1 stores 0x00CD with no synchronization.  Under shared-memory
execution the final value is one of the two stores; under a PTSB it
can be 0xABCD (AMBSA violated).  C++ calls this program racy —
undefined — which is exactly why PTSB use is permitted there
(Table 2, case 1).
"""

from repro.baselines import PthreadsRuntime, SheriffRuntime
from repro.engine import Engine, Program
from repro.isa import Binary


def litmus(result_box):
    binary = Binary("ambsa")
    st = binary.store_site("st", 2)
    ld = binary.load_site("ld", 2)

    def main(t):
        page = yield from t.malloc(4096, align=64)
        x = page + 128

        def writer_hi(w):
            yield from w.store(x, 0xAB00, 2, site=st)

        def writer_lo(w):
            yield from w.store(x, 0x00CD, 2, site=st)

        a = yield from t.spawn(writer_hi)
        b = yield from t.spawn(writer_lo)
        yield from t.join(a)
        yield from t.join(b)
        value = yield from t.load(x, 2, site=ld)
        result_box.append(value)

    return Program("ambsa", binary, main, nthreads=2)


class TestAmbsaLitmus:
    def test_shared_memory_never_tears(self):
        box = []
        Engine(litmus(box), PthreadsRuntime()).run()
        assert box[0] in (0xAB00, 0x00CD)

    def test_ptsb_execution_is_still_a_legal_c11_outcome_or_torn(self):
        """Under Sheriff the outcome may be torn (0xABCD) — permitted
        because the program is racy.  Either way the run completes and
        the value is composed of the two stores' bytes."""
        box = []
        Engine(litmus(box), SheriffRuntime("protect")).run()
        value = box[0]
        low, high = value & 0xFF, value >> 8
        assert low in (0x00, 0xCD)
        assert high in (0x00, 0xAB)
