"""End-to-end TMI runtime behaviour on controlled programs."""

import pytest

from repro.baselines import PthreadsRuntime
from repro.core import STAGE_ALLOC, STAGE_DETECT, STAGE_PROTECT
from repro.core import TmiConfig, TmiRuntime
from repro.engine import Engine
from repro.engine import layout

from helpers import fs_counter_program


def run_tmi(stage=STAGE_PROTECT, config=None, **program_kwargs):
    program = fs_counter_program(**program_kwargs)
    runtime = TmiRuntime(stage, config or TmiConfig())
    engine = Engine(program, runtime)
    return engine.run(), engine, runtime


class TestStages:
    def test_stage_names(self):
        assert TmiRuntime("alloc").name == "tmi-alloc"
        assert TmiRuntime("detect").name == "tmi-detect"
        assert TmiRuntime("protect").name == "tmi-protect"
        with pytest.raises(ValueError):
            TmiRuntime("bogus")

    def test_alloc_stage_has_no_detector(self):
        result, engine, runtime = run_tmi(STAGE_ALLOC, iters=500)
        assert runtime.detector is None
        assert result.validated

    def test_detect_stage_samples_but_never_repairs(self):
        result, engine, runtime = run_tmi(STAGE_DETECT, iters=30_000)
        assert runtime.perf.events_seen > 0
        assert runtime.repair is None
        assert len(engine.processes) == 1      # still one process

    def test_app_memory_is_shm_backed(self):
        _, engine, _ = run_tmi(STAGE_ALLOC, iters=100)
        heap = engine.root_aspace.mapping_at(layout.HEAP_BASE)
        assert heap.backing.file_backed
        stack = engine.root_aspace.mapping_at(layout.stack_base(0))
        assert stack.backing is heap.backing   # one shared region


class TestRepairEndToEnd:
    def test_repair_triggers_on_false_sharing(self):
        result, engine, runtime = run_tmi(iters=30_000)
        assert result.validated
        report = result.runtime_report
        assert report["repaired"]
        assert report["protected_pages"] >= 1
        assert report["t2p_us"] > 0
        # every live thread became its own process
        pids = {t.process.pid for t in engine.threads.values()}
        assert len(pids) == len(engine.threads)

    def test_repair_gives_speedup(self):
        baseline = Engine(fs_counter_program(iters=30_000, compute=100),
                          PthreadsRuntime()).run()
        repaired, _, _ = run_tmi(iters=30_000, compute=100)
        assert baseline.cycles > 1.5 * repaired.cycles

    def test_no_repair_without_false_sharing(self):
        result, engine, runtime = run_tmi(iters=20_000, stride=64)
        assert not result.runtime_report["repaired"]
        assert len(engine.processes) == 1

    def test_repair_disabled_by_config(self):
        config = TmiConfig(enable_repair=False)
        result, engine, _ = run_tmi(config=config, iters=30_000)
        assert not result.runtime_report["repaired"]

    def test_detect_overhead_small_without_contention(self):
        base = Engine(fs_counter_program(iters=20_000, stride=64,
                                         compute=60),
                      PthreadsRuntime()).run()
        detect, _, _ = run_tmi(STAGE_DETECT, iters=20_000, stride=64,
                               compute=60)
        overhead = detect.cycles / base.cycles - 1
        assert overhead < 0.10, overhead

    def test_huge_page_split_keeps_commits_small(self):
        config = TmiConfig(huge_pages=True, repair_page_split=True)
        result, engine, runtime = run_tmi(config=config, iters=30_000)
        assert result.validated
        if result.runtime_report["repaired"]:
            for page, size in runtime.repair.protected_pages.items():
                assert size == 4096

    def test_threads_created_after_repair_are_adopted(self):
        """pthread_create during the repaired phase: the child must be
        its own process with the same protections."""
        from repro.isa import Binary
        from repro.engine import Program

        binary = Binary("late")
        ld = binary.load_site("ld", 8)
        st = binary.store_site("st", 8)

        def main(t):
            buf = yield from t.malloc(4096, align=64)

            def worker(w):
                slot = buf + (w.tid % 8) * 8
                for _ in range(15_000):
                    value = yield from w.load(slot, 8, site=ld)
                    yield from w.store(slot, value + 1, 8, site=st)

            tids = []
            for _ in range(3):
                tid = yield from t.spawn(worker)
                tids.append(tid)
            for tid in tids:
                yield from t.join(tid)
            late = yield from t.spawn(worker, "late")
            yield from t.join(late)

        program = Program("late", binary, main, nthreads=4)
        runtime = TmiRuntime("protect")
        engine = Engine(program, runtime)
        engine.run()
        if runtime.repair.converted:
            late_thread = engine.threads[max(engine.threads)]
            assert len(late_thread.process.threads) == 1
            assert late_thread.process.ptsb is not None


class TestMemoryReport:
    def test_detect_reports_fixed_overheads(self):
        result, _, _ = run_tmi(STAGE_DETECT, iters=2_000)
        memory = result.memory_bytes
        assert memory["perf_buffers"] > 0
        assert memory["detector"] > 20 * 1024 * 1024

    def test_alloc_stage_reports_nothing_extra(self):
        result, _, _ = run_tmi(STAGE_ALLOC, iters=500)
        assert set(result.memory_bytes) == {"application"}
