"""The false sharing detector: filtering, thresholds, targeting."""

import pytest

from repro.core.config import TmiConfig
from repro.core.detector import FalseSharingDetector
from repro.isa import Binary, Disassembler
from repro.oskit.perf import PebsRecord
from repro.oskit.procmaps import AddressMap, MapEntry
from repro.sim.addrspace import AddressSpace, Backing
from repro.sim.costs import CostModel
from repro.sim.physmem import PhysicalMemory

HEAP = 0x4000_0000


def build_detector(config=None):
    binary = Binary("d")
    load = binary.load_site("ld", 8)
    store = binary.store_site("st", 8)
    physmem = PhysicalMemory()
    aspace = AddressSpace(physmem, CostModel())
    aspace.mmap(HEAP, 1 << 20, Backing(physmem, 1 << 20, "heap"),
                name="heap")
    amap = AddressMap([
        MapEntry(HEAP, HEAP + (1 << 20), "heap", "heap"),
        MapEntry(0x9000_0000, 0x9001_0000, "stack:1", "stack"),
    ])
    detector = FalseSharingDetector(Disassembler(binary), amap, aspace,
                                    config or TmiConfig())
    return detector, load, store


def record(pc, va, tid=1):
    return PebsRecord(cycle=0, tid=tid, pc=pc, va=va)


class TestFiltering:
    def test_stack_addresses_filtered(self):
        detector, load, _ = build_detector()
        detector.add_records([record(load.pc, 0x9000_0100)])
        assert detector.filtered_total == 1
        assert not detector.lines

    def test_unknown_pc_dropped(self):
        detector, _, _ = build_detector()
        detector.add_records([record(0xDEAD, HEAP)])
        assert detector.unknown_pc_total == 1

    def test_heap_addresses_aggregated(self):
        detector, load, _ = build_detector()
        detector.add_records([record(load.pc, HEAP + 8)])
        assert HEAP in detector.lines


class TestRepairPolicy:
    def fs_records(self, load, store, n, line=HEAP):
        out = []
        for i in range(n):
            out.append(record(store.pc, line + 0, tid=1))
            out.append(record(load.pc, line + 32, tid=2))
        return out

    def test_hot_false_sharing_targeted(self):
        config = TmiConfig(repair_threshold_events=100, period=100)
        detector, load, store = build_detector(config)
        detector.add_records(self.fs_records(load, store, 5))
        report = detector.analyze(1, period=100)
        assert len(report.targets) == 1
        target = report.targets[0]
        assert target.page_va == HEAP
        assert target.line_va == HEAP

    def test_cold_line_not_targeted(self):
        config = TmiConfig(repair_threshold_events=100_000, period=100)
        detector, load, store = build_detector(config)
        detector.add_records(self.fs_records(load, store, 3))
        report = detector.analyze(1, period=100)
        assert not report.targets

    def test_true_sharing_not_targeted(self):
        """Locks and shared counters must never trigger repair."""
        config = TmiConfig(repair_threshold_events=100, period=100)
        detector, load, store = build_detector(config)
        records = []
        for _ in range(10):
            records.append(record(store.pc, HEAP + 8, tid=1))
            records.append(record(store.pc, HEAP + 8, tid=2))
        detector.add_records(records)
        report = detector.analyze(1, period=100)
        assert not report.targets
        assert report.true_lines == 1

    def test_cumulative_rate_accumulates_across_intervals(self):
        """A hot line sampled slowly still crosses the bar eventually."""
        config = TmiConfig(repair_threshold_events=600, period=100)
        detector, load, store = build_detector(config)
        for interval in range(1, 4):
            detector.add_records(self.fs_records(load, store, 1))
            report = detector.analyze(interval, period=100)
        assert report.targets

    def test_line_targeted_once(self):
        config = TmiConfig(repair_threshold_events=100, period=100)
        detector, load, store = build_detector(config)
        detector.add_records(self.fs_records(load, store, 5))
        first = detector.analyze(1, period=100)
        detector.add_records(self.fs_records(load, store, 5))
        second = detector.analyze(2, period=100)
        assert len(first.targets) == 1
        assert not second.targets

    def test_max_repair_pages_cap(self):
        config = TmiConfig(repair_threshold_events=100, period=100,
                           max_repair_pages=2)
        detector, load, store = build_detector(config)
        records = []
        for i in range(5):
            records.extend(self.fs_records(load, store, 5,
                                           line=HEAP + i * 4096))
        detector.add_records(records)
        report = detector.analyze(1, period=100)
        assert len(report.targets) == 2


class TestReporting:
    def test_estimated_events_scaled_by_period(self):
        detector, load, store = build_detector()
        detector.add_records([record(load.pc, HEAP, tid=1),
                              record(store.pc, HEAP + 8, tid=2)])
        report = detector.analyze(1, period=100)
        assert report.estimated_events == 200

    def test_memory_bytes_grows_with_lines(self):
        detector, load, store = build_detector()
        before = detector.memory_bytes()
        records = []
        for i in range(50):
            records.append(record(load.pc, HEAP + i * 64))
        detector.add_records(records)
        assert detector.memory_bytes() > before

    def test_analysis_cost_scales_with_lines(self):
        detector, load, _ = build_detector()
        costs = CostModel()
        empty = detector.analysis_cost(costs)
        detector.add_records([record(load.pc, HEAP + i * 64)
                              for i in range(100)])
        assert detector.analysis_cost(costs) > empty
