"""Profiler: exclusive/inclusive accounting and zero cycle impact."""

import time

from repro.eval.runner import run_workload
from repro.obs import Profiler, format_profile


class TestAccounting:
    def test_nested_categories_attribute_self_time_only(self):
        profiler = Profiler()
        with profiler.phase("outer"):
            time.sleep(0.02)
            with profiler.phase("inner"):
                time.sleep(0.02)
        # outer's exclusive time excludes inner; inclusive includes it
        assert profiler.seconds["inner"] >= 0.015
        assert profiler.seconds["outer"] < profiler.inclusive["outer"]
        assert profiler.inclusive["outer"] >= \
            profiler.seconds["outer"] + profiler.seconds["inner"]

    def test_wrap_counts_calls(self):
        class Thing:
            def work(self, x):
                return x + 1

        thing = Thing()
        profiler = Profiler()
        profiler.wrap(thing, "work", "widget")
        assert thing.work(1) == 2
        assert thing.work(2) == 3
        assert profiler.calls["widget"] == 2

    def test_report_includes_engine_self_time(self):
        profiler = Profiler()
        with profiler.phase("run"):
            with profiler.phase("memory-system"):
                pass
        report = profiler.report()
        assert "engine" in report
        assert report["run"]["seconds"] >= report["engine"]["seconds"]

    def test_format_profile_renders_from_plain_dict(self):
        profiler = Profiler()
        with profiler.phase("run"):
            pass
        text = format_profile(profiler.report())
        assert "self-profile" in text
        assert "total" in text


class TestProfiledRun:
    def test_profiled_run_is_cycle_identical(self):
        base = run_workload("histogram", "pthreads", scale=0.05)
        profiled = run_workload("histogram", "pthreads", scale=0.05,
                                profile=True)
        assert profiled.ok
        assert profiled.cycles == base.cycles

    def test_profile_attributes_known_subsystems(self):
        outcome = run_workload("histogramfs", "tmi-protect", scale=0.2,
                               profile=True)
        report = outcome.profile
        assert report["memory-system"]["calls"] > 0
        assert report["runtime-translate"]["calls"] > 0
        assert report["detector"]["calls"] > 0
        assert report["engine"]["seconds"] >= 0

    def test_profile_is_picklable(self):
        import pickle

        outcome = run_workload("histogram", "pthreads", scale=0.05,
                               profile=True)
        assert pickle.loads(pickle.dumps(outcome.profile)) == \
            outcome.profile
