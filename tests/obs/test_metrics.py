"""Metrics registry: instrument semantics and snapshot determinism."""

import json

import pytest

from repro.obs import (DEFAULT_BUCKETS, METRICS_VERSION, MetricsRegistry)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("ops")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("ops")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_name_same_labels_is_same_instrument(self):
        reg = MetricsRegistry()
        reg.counter("ops", core=1).inc(2)
        reg.counter("ops", core=1).inc(3)
        reg.counter("ops", core=2).inc(7)
        snap = reg.snapshot()
        assert snap["counters"]["ops{core=1}"] == 5
        assert snap["counters"]["ops{core=2}"] == 7


class TestGauge:
    def test_set_and_add(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_bucket_counts_are_cumulative_style_per_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("sizes", buckets=(10, 100))
        for v in (1, 5, 50, 500):
            h.observe(v)
        snap = reg.snapshot()["histograms"]["sizes"]
        assert snap["count"] == 4
        assert snap["sum"] == 556
        # per-bucket (non-cumulative) counts, +Inf is the overflow
        assert snap["buckets"] == {"10": 2, "100": 1, "+Inf": 1}

    def test_default_buckets_cover_commit_sizes(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert DEFAULT_BUCKETS[-1] == 65536


class TestIngest:
    def test_nested_report_dict_becomes_gauges(self):
        reg = MetricsRegistry()
        reg.ingest("runtime", {"commits": 4, "repaired": True,
                               "memory": {"ptsb": 128}},
                   system="tmi-protect")
        snap = reg.snapshot()["gauges"]
        assert snap["runtime.commits{system=tmi-protect}"] == 4
        assert snap["runtime.repaired{system=tmi-protect}"] == 1
        assert snap["runtime.memory.ptsb{system=tmi-protect}"] == 128

    def test_non_numeric_values_become_info_gauges(self):
        reg = MetricsRegistry()
        reg.ingest("runtime", {"stage": "protect"})
        snap = reg.snapshot()["gauges"]
        assert snap["runtime.stage.info{value=protect}"] == 1


class TestSnapshot:
    def test_versioned_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").inc()
        reg.counter("a").inc()
        snap = reg.snapshot()
        assert snap["version"] == METRICS_VERSION
        assert list(snap["counters"]) == ["a", "z"]

    def test_insertion_order_does_not_change_bytes(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.counter("a").inc()
        one.gauge("b", core=1).set(2)
        two.gauge("b", core=1).set(2)
        two.counter("a").inc()
        assert one.to_json() == two.to_json()

    def test_save_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("ops").inc(3)
        path = tmp_path / "metrics.json"
        reg.save(path)
        assert json.loads(path.read_text())["counters"]["ops"] == 3
