"""Acceptance: observability artifacts are deterministic.

Metrics snapshots and trace data must be byte-identical whether cells
run serially (``REPRO_JOBS=1``) or across worker processes — the same
guarantee the cycle counts already carry.
"""

import json

from repro.eval.parallel import run_cells


def _cells():
    return [dict(name="histogramfs", system="tmi-protect", scale=0.25,
                 collect_metrics=True, trace=True),
            dict(name="histogram", system="pthreads", scale=0.05,
                 collect_metrics=True, trace=True)]


class TestAcrossJobCounts:
    def test_metrics_and_traces_byte_identical(self):
        serial = run_cells(_cells(), jobs=1)
        parallel = run_cells(_cells(), jobs=2)
        for ser, par in zip(serial, parallel):
            assert ser.ok and par.ok
            assert json.dumps(ser.metrics, sort_keys=True) == \
                json.dumps(par.metrics, sort_keys=True)
            assert json.dumps(ser.trace_data, sort_keys=True) == \
                json.dumps(par.trace_data, sort_keys=True)

    def test_metrics_carry_machine_and_runtime_families(self):
        outcome = run_cells(_cells(), jobs=1)[0]
        snap = outcome.metrics
        assert snap["gauges"]["machine.cycles"] == outcome.cycles
        assert "engine.ops" in snap["counters"]
        label = "{system=tmi-protect}"
        assert snap["counters"][f"tmi.commits{label}"] > 0
        hist = snap["histograms"][f"tmi.commit_size_bytes{label}"]
        assert hist["count"] == snap["counters"][f"tmi.commits{label}"]
