"""Tracer: event capture, export formats, zero simulation impact.

The end-to-end runs use histogramfs under tmi-protect at a small scale
— the repair pipeline fires (HITM -> PEBS -> detect -> T2P -> PTSB
commits), so the trace exercises every observability hook.
"""

import json

import pytest

from repro.eval.runner import run_workload
from repro.obs import (TRACE_VERSION, Tracer, write_chrome_trace,
                       write_jsonl)


@pytest.fixture(scope="module")
def traced():
    """One traced repair run, shared across this module's tests."""
    outcome = run_workload("histogramfs", "tmi-protect", scale=0.3,
                           trace=True)
    assert outcome.ok, outcome.detail
    return outcome


@pytest.fixture(scope="module")
def untraced():
    outcome = run_workload("histogramfs", "tmi-protect", scale=0.3)
    assert outcome.ok, outcome.detail
    return outcome


class TestTraceContent:
    def test_versioned_with_run_meta(self, traced):
        data = traced.trace_data
        assert data["version"] == TRACE_VERSION
        assert data["meta"]["program"] == "histogramfs"
        assert data["meta"]["system"] == "tmi-protect"
        assert data["meta"]["cycles_per_second"] > 0

    def test_repair_pipeline_kinds_all_present(self, traced):
        counts = traced.trace_data["counts"]
        for kind in ("hitm", "pebs_record", "detect_interval", "t2p",
                     "ptsb_commit"):
            assert counts.get(kind, 0) > 0, (kind, counts)

    def test_counts_match_run_stats(self, traced):
        counts = traced.trace_data["counts"]
        report = traced.result.runtime_report
        assert counts["ptsb_commit"] == report["commits"]
        assert counts["detect_interval"] == report["intervals"]
        assert counts["pebs_record"] == report["perf_records"]

    def test_t2p_records_converted_thread_count(self, traced):
        t2p = [e for e in traced.trace_data["events"]
               if e["kind"] == "t2p"]
        assert t2p[0]["mode"] == "initial"
        assert t2p[0]["threads"] > 1

    def test_access_events_off_by_default(self, traced):
        assert "access" not in traced.trace_data["counts"]

    def test_timestamps_are_simulated_cycles(self, traced):
        for event in traced.trace_data["events"]:
            assert 0 <= event["ts"] <= traced.cycles


class TestZeroOverhead:
    def test_traced_run_is_cycle_identical(self, traced, untraced):
        assert traced.cycles == untraced.cycles
        assert traced.result.runtime_report == \
            untraced.result.runtime_report

    def test_tracer_composes_with_sanitizer(self):
        outcome = run_workload("histogram", "pthreads", scale=0.05,
                               trace=True, sanitize=True)
        assert outcome.ok
        assert outcome.trace_data is not None
        assert outcome.analysis is not None


class TestAccessEvents:
    def test_opt_in_records_accesses(self):
        outcome = run_workload("histogram", "pthreads", scale=0.05,
                               trace="access")
        counts = outcome.trace_data["counts"]
        assert counts.get("access", 0) > 0


class TestJsonlExport:
    def test_header_then_one_event_per_line(self, traced, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(traced.trace_data, path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["version"] == TRACE_VERSION
        assert len(lines) - 1 == len(traced.trace_data["events"])
        for line in lines[1:]:
            assert "kind" in json.loads(line)


class TestChromeExport:
    @pytest.fixture(scope="class")
    def document(self, traced, tmp_path_factory):
        path = tmp_path_factory.mktemp("chrome") / "trace.json"
        write_chrome_trace(traced.trace_data, path)
        return json.loads(path.read_text())

    def test_is_a_trace_events_document(self, document):
        assert isinstance(document["traceEvents"], list)
        assert document["otherData"]["version"] == TRACE_VERSION

    def test_named_tracks_for_cores_threads_monitor(self, document):
        names = [e["args"]["name"] for e in document["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"]
        assert "core 0" in names
        assert "monitor" in names
        assert any(name.startswith("thread ") for name in names)

    def test_hitm_lands_on_core_tracks(self, document):
        hitm = [e for e in document["traceEvents"]
                if e["ph"] == "i" and e["name"] == "hitm"]
        assert hitm
        assert all(e["pid"] == 0 for e in hitm)

    def test_monitor_track_carries_detector_events(self, document):
        monitor = {e["name"] for e in document["traceEvents"]
                   if e["ph"] == "i" and e["pid"] == 2}
        assert {"pebs_record", "detect_interval", "t2p"} <= monitor

    def test_timestamps_in_microseconds(self, document, traced):
        hz = traced.trace_data["meta"]["cycles_per_second"]
        horizon = traced.cycles / hz * 1e6
        for event in document["traceEvents"]:
            if event["ph"] == "i":
                assert 0 <= event["ts"] <= horizon


class TestTracerUnit:
    def test_counts_sorted_and_stable(self):
        tracer = Tracer()
        tracer._emit("b", 2)
        tracer._emit("a", 1)
        tracer._emit("b", 3)
        assert list(tracer.counts()) == ["a", "b"]
        assert tracer.counts() == {"a": 1, "b": 2}

    def test_trace_data_is_plain_and_picklable(self):
        import pickle

        tracer = Tracer()
        tracer._emit("hitm", 5, core=0)
        data = tracer.trace_data()
        assert pickle.loads(pickle.dumps(data)) == data


class TestEventLogRotation:
    def make_log(self, n, max_events=8):
        from repro.obs import EventLog
        log = EventLog(max_events=max_events)
        for index in range(n):
            log.emit("tick", index=index)
        return log

    def test_growth_is_bounded(self):
        log = self.make_log(1000, max_events=8)
        # never more than the cap: rotation halves at the threshold
        assert len(log.events) <= 8

    def test_rotation_summarizes_the_dropped_half(self):
        log = self.make_log(8, max_events=8)
        rotated = [e for e in log.events if e["kind"] == "log_rotated"]
        assert len(rotated) == 1
        assert rotated[0]["dropped"] == 4
        assert rotated[0]["dropped_total"] == 4
        # the survivors are the newest events, order preserved
        kept = [e["index"] for e in log.events if e["kind"] == "tick"]
        assert kept == [4, 5, 6, 7]

    def test_counts_include_rotated_out_events(self):
        log = self.make_log(100, max_events=8)
        assert log.counts()["tick"] == 100

    def test_sequence_numbers_survive_rotation(self):
        log = self.make_log(50, max_events=8)
        stamps = [e["ts"] for e in log.events]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_identical_histories_rotate_identically(self):
        a = self.make_log(123, max_events=8).trace_data()
        b = self.make_log(123, max_events=8).trace_data()
        assert a == b

    def test_zero_cap_disables_rotation(self):
        log = self.make_log(100, max_events=0)
        assert len(log.events) == 100
        assert log.counts() == {"tick": 100}
